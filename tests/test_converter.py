"""End-to-end converter tests: numerics preserved, optimizations applied."""

from __future__ import annotations

import numpy as np

from repro.converter import convert
from repro.core.types import Padding
from repro.graph.builder import GraphBuilder
from repro.graph.executor import Executor
from repro.kernels.batchnorm import BatchNormParams


def _bn(rng, c):
    return BatchNormParams(
        gamma=rng.uniform(0.5, 1.5, c).astype(np.float32),
        beta=rng.standard_normal(c).astype(np.float32),
        mean=rng.standard_normal(c).astype(np.float32),
        variance=rng.uniform(0.2, 1.5, c).astype(np.float32),
    )


def _residual_net(rng):
    """Stem conv + two binary residual layers + bmaxpool pattern + head."""
    b = GraphBuilder((1, 12, 12, 8), name="toy_residual")
    x = b.conv2d(b.input, rng.standard_normal((3, 3, 8, 16)).astype(np.float32))
    x = b.batch_norm(x, _bn(rng, 16))
    for _ in range(2):
        h = b.binarize(x)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 16, 16)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        h = b.relu(h)
        h = b.batch_norm(h, _bn(rng, 16))
        x = b.add(h, x)
    p = b.maxpool2d(x, 2, 2)
    q = b.binarize(p)
    q = b.conv2d(
        q, rng.choice([-1.0, 1.0], (3, 3, 16, 16)).astype(np.float32),
        padding=Padding.SAME_ONE, binary_weights=True,
    )
    g = b.global_avgpool(q)
    out = b.dense(g, rng.standard_normal((16, 10)).astype(np.float32))
    return b.finish(out)


class TestNumericalEquivalence:
    def test_residual_net_exact(self, rng):
        g = _residual_net(rng)
        x = rng.standard_normal((1, 12, 12, 8)).astype(np.float32)
        before = Executor(g).run(x)
        model = convert(g)
        after = Executor(model.graph).run(x)
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-4)

    def test_chain_net_exact(self, rng):
        """No shortcuts: the whole binary chain exchanges bitpacked data and
        stays exactly equal to the emulation (integer arithmetic)."""
        b = GraphBuilder((1, 8, 8, 8))
        x = b.input
        for i in range(3):
            h = b.binarize(x)
            h = b.conv2d(
                h, rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32),
                padding=Padding.SAME_ONE, binary_weights=True,
            )
            h = b.batch_norm(h, _bn(rng, 8))
            x = h
        g = b.finish(b.global_avgpool(x))
        inp = rng.standard_normal((1, 8, 8, 8)).astype(np.float32)
        before = Executor(g).run(inp)
        model = convert(g)
        after = Executor(model.graph).run(inp)
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-4)
        # middle convs write bitpacked output
        out_types = [
            n.attr("output_type") for n in model.graph.ops_by_type("lce_bconv2d")
        ]
        assert out_types[:2] == ["bitpacked", "bitpacked"]


class TestOptimizationsApplied:
    def test_converted_op_mix(self, rng):
        model = convert(_residual_net(rng))
        ops = {n.op for n in model.graph.nodes}
        assert "lce_bconv2d" in ops
        assert "lce_bmaxpool2d" in ops
        assert "binarize" not in ops
        assert "batch_norm" not in ops
        assert "relu" not in ops  # fused

    def test_report_counts(self, rng):
        g = _residual_net(rng)
        model = convert(g)
        assert model.report.nodes_before == len(g)
        assert model.report.nodes_after == len(model.graph)
        assert model.report.nodes_after < model.report.nodes_before
        assert model.report.weight_compression > 1.0

    def test_in_place_false_preserves_input(self, rng):
        g = _residual_net(rng)
        n_before = len(g)
        convert(g, in_place=False)
        assert len(g) == n_before

    def test_in_place_true_mutates(self, rng):
        g = _residual_net(rng)
        model = convert(g, in_place=True)
        assert model.graph is g

    def test_pass_changes_recorded(self, rng):
        model = convert(_residual_net(rng))
        assert model.report.pass_changes["binarize_convs"] >= 1
        assert model.report.pass_changes["fuse_batchnorm"] >= 1
        assert model.report.pass_changes["bmaxpool_swap"] >= 1

    def test_idempotent(self, rng):
        model = convert(_residual_net(rng))
        again = convert(model.graph)
        assert len(again.graph) == len(model.graph)


class TestPureFloatGraphUntouched:
    def test_float_net_passes_through(self, rng):
        b = GraphBuilder((1, 8, 8, 3))
        x = b.conv2d(b.input, rng.standard_normal((3, 3, 3, 8)).astype(np.float32))
        x = b.global_avgpool(x)
        g = b.finish(x)
        model = convert(g)
        assert {n.op for n in model.graph.nodes} == {"conv2d", "global_avgpool"}
