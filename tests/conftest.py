"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for everything: these tests exercise NumPy kernels,
# so per-example runtime dominates and hypothesis deadlines only add noise.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
