"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for everything: these tests exercise NumPy kernels,
# so per-example runtime dominates and hypothesis deadlines only add noise.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session", autouse=True)
def _lock_sanitizer_teardown():
    """Under ``REPRO_SANITIZE=1``, fail the session on a lock-graph cycle.

    Rank inversions raise :class:`LockOrderError` at the offending
    acquisition inside individual tests; this end-of-session gate catches
    the remaining deadlock-potential signal — a cycle among equal-rank
    locks recorded across the whole suite's acquisition graph.
    """
    yield
    from repro.concurrency.locks import check_teardown, sanitizer_enabled

    if sanitizer_enabled():
        check_teardown()
