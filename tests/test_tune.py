"""Tests for the per-geometry kernel autotuner (:mod:`repro.tune`).

Covers the geometry key, the bounded candidate search, the persistent
:class:`TuningCache` artifact (round-trip, typed rejection of corrupt
files, diff) and — most importantly — the plan-compilation contract:
tuned schedules steer ``lce_bconv2d`` nodes bit-identically, lookups
keyed under a different device-profile id must *miss*, and untuned
geometries fall back to the default schedule unchanged.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.converter import convert
from repro.core.kernel_config import (
    DEFAULT_CONFIG,
    KernelConfig,
    validate_kernel_config,
)
from repro.hw.device import DeviceProfile
from repro.runtime import Engine, compile_plan
from repro.tune import (
    ConvGeometryKey,
    TuningCache,
    TuningEntry,
    TuningError,
    candidate_configs,
    diff_tunings,
    graph_geometries,
    list_tunings,
    load_tuning,
    measure_config,
    node_geometry,
    save_tuning,
    tune_geometries,
    tune_geometry,
    validate_tuning,
)
from repro.zoo import build_model


def _tiny_geometry(**overrides):
    kw = dict(
        batch=1, in_h=4, in_w=4, in_channels=32, out_channels=32,
        kernel_h=3, kernel_w=3,
    )
    kw.update(overrides)
    return ConvGeometryKey(**kw)


def _entry(geometry=None, profile_id="default", config=None):
    return TuningEntry(
        geometry=geometry or _tiny_geometry(),
        device_profile_id=profile_id,
        config=config or KernelConfig(tile_m=128, tile_n=64),
        best_us=10.0,
        default_us=13.0,
        candidates=8,
        repeats=3,
    )


def _quicknet_model():
    return convert(build_model("quicknet_small", input_size=32), in_place=True)


# --------------------------------------------------------------- geometry


class TestConvGeometryKey:
    def test_key_string_is_stable(self):
        g = ConvGeometryKey(
            batch=1, in_h=7, in_w=7, in_channels=512, out_channels=512,
            kernel_h=3, kernel_w=3,
        )
        assert g.key == "b1_i7x7x512_o512_k3x3_s1_d1_same_one_g1"

    def test_derived_quantities(self):
        g = _tiny_geometry()
        assert g.out_hw == (4, 4)
        assert g.bgemm_m == 16
        assert g.bgemm_words == 9  # 3*3 taps, 32 channels -> 1 word each
        assert g.macs == 16 * 32 * (9 * 32)

    def test_json_round_trip(self):
        g = _tiny_geometry()
        assert ConvGeometryKey.from_json(g.to_json()) == g

    def test_rejects_unknown_fields(self):
        obj = _tiny_geometry().to_json()
        obj["vectorize"] = True
        with pytest.raises(ValueError, match="vectorize"):
            ConvGeometryKey.from_json(obj)

    @pytest.mark.parametrize("field", ["batch", "in_h", "in_channels", "kernel_h"])
    def test_rejects_non_positive_dims(self, field):
        with pytest.raises(ValueError):
            _tiny_geometry(**{field: 0})

    def test_rejects_unknown_padding(self):
        with pytest.raises(ValueError):
            _tiny_geometry(padding="reflect")

    def test_graph_geometries_dedups_quicknet(self):
        model = _quicknet_model()
        keys = [g.key for g in graph_geometries(model.graph)]
        assert keys == [
            "b1_i8x8x32_o32_k3x3_s1_d1_same_one_g1",
            "b1_i4x4x64_o64_k3x3_s1_d1_same_one_g1",
            "b1_i2x2x256_o256_k3x3_s1_d1_same_one_g1",
            "b1_i1x1x512_o512_k3x3_s1_d1_same_one_g1",
        ]

    def test_graph_geometries_scales_with_batch_factor(self):
        model = _quicknet_model()
        for g in graph_geometries(model.graph, batch_factor=4):
            assert g.batch == 4

    def test_node_geometry_matches_graph_sweep(self):
        from repro.runtime import rebatched_specs

        model = _quicknet_model()
        node = next(n for n in model.graph.nodes if n.op == "lce_bconv2d")
        geometry = node_geometry(node, rebatched_specs(model.graph, 1))
        assert geometry.key == "b1_i8x8x32_o32_k3x3_s1_d1_same_one_g1"

    def test_node_geometry_rejects_other_ops(self):
        model = _quicknet_model()
        node = next(n for n in model.graph.nodes if n.op != "lce_bconv2d")
        with pytest.raises(ValueError, match="not lce_bconv2d"):
            node_geometry(node, {})


# ----------------------------------------------------------- kernel config


class TestKernelConfig:
    def test_default_is_default(self):
        assert DEFAULT_CONFIG.is_default
        assert not KernelConfig(tile_m=64).is_default

    def test_json_round_trip(self):
        cfg = KernelConfig(tile_m=64, tile_n=32, im2col="direct")
        assert KernelConfig.from_json(cfg.to_json()) == cfg

    def test_validate_reports_all_problems(self):
        problems = validate_kernel_config(
            {"tile_m": 0, "tile_n": "x", "im2col": "magic"}
        )
        assert len(problems) >= 3

    @pytest.mark.parametrize(
        "kw", [{"tile_m": 0}, {"tile_n": -1}, {"tile_k_words": True},
               {"im2col": "nope"}, {"thread_grain": 0}],
    )
    def test_constructor_validates(self, kw):
        with pytest.raises((TypeError, ValueError)):
            KernelConfig(**kw)


# ----------------------------------------------------------------- search


class TestSearch:
    def test_candidates_start_with_default(self):
        cands = candidate_configs(_tiny_geometry())
        assert cands[0] == DEFAULT_CONFIG
        assert len(cands) == len(set(cands)), "candidates must be deduped"

    def test_truncation_keeps_default(self):
        cands = candidate_configs(_tiny_geometry(), max_candidates=3)
        assert len(cands) == 3
        assert DEFAULT_CONFIG in cands

    def test_threaded_search_adds_grain_axis(self):
        grains = {
            c.thread_grain
            for c in candidate_configs(_tiny_geometry(), num_threads=2)
        }
        assert grains == {1, 2}

    def test_measure_config_returns_positive_us(self):
        us = measure_config(_tiny_geometry(), DEFAULT_CONFIG, repeats=2)
        assert us > 0

    def test_tune_geometry_produces_consistent_entry(self):
        entry = tune_geometry(_tiny_geometry(), repeats=2, max_candidates=4)
        assert entry.device_profile_id == "default"
        assert entry.candidates == 4
        assert entry.repeats == 2
        # The default config is always in the candidate set, so the
        # winner can never be measurably slower than it.
        assert entry.best_us <= entry.default_us
        assert entry.speedup >= 1.0

    def test_near_tie_resolves_to_default(self, monkeypatch):
        # A non-default candidate that wins by less than min_gain is
        # timing noise: the entry must record the default schedule.
        import repro.tune.search as search

        def fake_measure(geometry, config, **kwargs):
            return 100.0 if config == DEFAULT_CONFIG else 95.0

        monkeypatch.setattr(search, "measure_config", fake_measure)
        entry = search.tune_geometry(_tiny_geometry(), repeats=2)
        assert entry.config == DEFAULT_CONFIG
        assert entry.best_us == entry.default_us == 100.0

    def test_clear_win_is_kept(self, monkeypatch):
        import repro.tune.search as search

        def fake_measure(geometry, config, **kwargs):
            return 100.0 if config == DEFAULT_CONFIG else 80.0

        monkeypatch.setattr(search, "measure_config", fake_measure)
        entry = search.tune_geometry(_tiny_geometry(), repeats=2)
        assert entry.config != DEFAULT_CONFIG
        assert entry.best_us == 80.0

    def test_rejects_bad_min_gain(self):
        with pytest.raises(ValueError, match="min_gain"):
            tune_geometry(_tiny_geometry(), repeats=1, min_gain=1.5)

    def test_tune_geometries_builds_cache(self):
        geometries = [_tiny_geometry(), _tiny_geometry(in_h=5, in_w=5)]
        cache = tune_geometries(
            geometries, name="t", repeats=2, max_candidates=2
        )
        assert cache.name == "t"
        assert len(cache) == 2


# ------------------------------------------------------------ cache lookup


class TestTuningCacheLookup:
    def test_hit_returns_entry(self):
        entry = _entry()
        cache = TuningCache(name="c", entries=(entry,))
        assert cache.lookup(entry.geometry.key, "default") is entry

    def test_same_geometry_different_profile_id_misses(self):
        # The satellite contract: a schedule tuned under one calibrated
        # device profile must never steer plans compiled under another.
        entry = _entry(profile_id="rpi4b-cal")
        cache = TuningCache(name="c", entries=(entry,))
        assert cache.lookup(entry.geometry.key, "rpi4b-cal") is entry
        assert cache.lookup(entry.geometry.key, "default") is None
        assert cache.lookup(entry.geometry.key, "pixel1-cal") is None

    def test_unknown_geometry_misses(self):
        cache = TuningCache(name="c", entries=(_entry(),))
        assert cache.lookup("b9_i9x9x9_o9_k9x9_s1_d1_same_one_g1", "default") is None

    def test_with_entry_replaces_same_key(self):
        first = _entry()
        better = _entry(config=KernelConfig(tile_m=512))
        cache = TuningCache(name="c", entries=(first,)).with_entry(better)
        assert len(cache) == 1
        assert cache.lookup(*first.key).config == better.config


# -------------------------------------------------------- artifact round-trip


class TestTuningArtifact:
    def test_save_load_round_trip(self, tmp_path):
        cache = TuningCache(name="roundtrip", entries=(_entry(),))
        path = save_tuning(cache, tmp_path / "t.json")
        assert load_tuning(path) == cache

    def test_validate_accepts_saved_artifact(self, tmp_path):
        cache = TuningCache(name="ok", entries=(_entry(),))
        path = save_tuning(cache, tmp_path / "t.json")
        assert validate_tuning(json.loads(path.read_text())) == []

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(TuningError, match="cannot read"):
            load_tuning(tmp_path / "absent.json")

    def test_non_json_raises_typed_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(TuningError, match="not valid JSON"):
            load_tuning(path)

    def test_schema_violation_raises_typed_error(self, tmp_path):
        obj = TuningCache(name="bad", entries=(_entry(),)).to_json()
        obj["entries"][0]["config"]["tile_m"] = 0
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(obj))
        with pytest.raises(TuningError, match="tile_m"):
            load_tuning(path)

    def test_newer_schema_version_rejected(self):
        obj = TuningCache(name="future").to_json()
        obj["schema_version"] = 99
        problems = validate_tuning(obj)
        assert any("newer than supported" in p for p in problems)

    def test_duplicate_keys_rejected(self):
        e = _entry()
        obj = {
            "schema": "repro.tuning_cache",
            "schema_version": 1,
            "name": "dup",
            "entries": [e.to_json(), e.to_json()],
        }
        problems = validate_tuning(obj)
        assert any("duplicates" in p for p in problems)

    def test_list_tunings_summarizes_and_flags_invalid(self, tmp_path):
        save_tuning(
            TuningCache(name="good", entries=(_entry(),)), tmp_path / "a.json"
        )
        bad = TuningCache(name="bad", entries=(_entry(),)).to_json()
        bad["entries"][0]["best_us"] = -1
        (tmp_path / "b.json").write_text(json.dumps(bad))
        (tmp_path / "other.json").write_text(json.dumps({"schema": "x"}))
        (tmp_path / "not.json").write_text("}{")
        rows = list_tunings(tmp_path)
        assert len(rows) == 2
        good_row = next(r for r in rows if "name" in r)
        assert good_row["name"] == "good"
        assert good_row["entries"] == 1
        assert good_row["profiles"] == ["default"]
        bad_row = next(r for r in rows if "problems" in r)
        assert any("best_us" in p for p in bad_row["problems"])

    def test_diff_reports_config_changes_and_one_sided_keys(self):
        shared = _entry()
        changed = _entry(config=KernelConfig(tile_m=512, im2col="direct"))
        only_a = _entry(geometry=_tiny_geometry(in_h=5, in_w=5))
        a = TuningCache(name="a", entries=(shared, only_a))
        b = TuningCache(name="a", entries=(changed,))
        diffs = diff_tunings(a, b)
        assert "name" not in diffs
        key = f"{shared.geometry.key}@default"
        assert diffs[key] == (shared.config.to_json(), changed.config.to_json())
        lone = diffs[f"{only_a.geometry.key}@default"]
        assert lone == (only_a.config.to_json(), None)

    def test_diff_identical_caches_is_empty(self):
        cache = TuningCache(name="same", entries=(_entry(),))
        assert diff_tunings(cache, cache) == {}


# -------------------------------------------------- plan-compilation wiring


def _tuned_cache_for(model, config, profile_id="default"):
    """A cache steering the first (8x8x32) QuickNet geometry to ``config``."""
    geometry = graph_geometries(model.graph)[0]
    entry = TuningEntry(
        geometry=geometry,
        device_profile_id=profile_id,
        config=config,
        best_us=5.0,
        default_us=9.0,
        candidates=4,
        repeats=3,
    )
    return TuningCache(name="test-tuned", entries=(entry,))


class TestPlanWiring:
    CONFIG = KernelConfig(tile_m=64, tile_n=32, im2col="direct")

    def test_tuned_plan_records_sources(self):
        model = _quicknet_model()
        tuning = _tuned_cache_for(model, self.CONFIG)
        plan = compile_plan(model.graph, tuning=tuning)
        assert plan.tuning_id == "test-tuned"
        tuned = [t for t in plan.tuning if t.source == "tuned"]
        defaulted = [t for t in plan.tuning if t.source == "default"]
        # 4 of the 16 binary convs share the 8x8x32 geometry.
        assert plan.tuned_nodes == len(tuned) == 4
        assert len(defaulted) == 12
        assert all(t.config == self.CONFIG for t in tuned)
        assert all(t.config is None for t in defaulted)
        assert all(t.op == "lce_bconv2d" for t in plan.tuning)

    def test_untuned_plan_has_no_tuning_records(self):
        model = _quicknet_model()
        plan = compile_plan(model.graph)
        assert plan.tuning == ()
        assert plan.tuning_id is None
        assert plan.tuned_nodes == 0

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_tuned_outputs_bit_identical(self, rng, threads):
        model = _quicknet_model()
        tuning = _tuned_cache_for(model, self.CONFIG)
        x = rng.standard_normal((1, 32, 32, 3)).astype(np.float32)
        with Engine(model, num_threads=threads) as plain:
            expected = plain.run(x)
        with Engine(model, num_threads=threads, tuning=tuning) as tuned:
            got = tuned.run(x)
            stats = tuned.stats()
        assert np.array_equal(got[0], expected[0])
        assert stats.tuning_id == "test-tuned"
        assert stats.tuned_nodes == 4

    def test_profile_id_mismatch_falls_back_to_default(self, rng):
        # Entries tuned under a differently-named calibrated profile must
        # not steer this plan: same geometry, different device, miss.
        model = _quicknet_model()
        tuning = _tuned_cache_for(model, self.CONFIG, profile_id="rpi4b-cal")
        plan = compile_plan(model.graph, tuning=tuning)
        assert plan.tuned_nodes == 0
        assert all(t.source == "default" for t in plan.tuning)

    def test_default_profile_object_matches_default_id(self):
        # DeviceProfile.default(...) keeps the artifact name "default", so
        # caches tuned without calibration still hit under it.
        model = _quicknet_model()
        tuning = _tuned_cache_for(model, self.CONFIG)
        profile = DeviceProfile.default("pixel1")
        plan = compile_plan(model.graph, profile=profile, tuning=tuning)
        assert plan.tuned_nodes == 4

    def test_untuned_stats_report_none(self, rng):
        model = _quicknet_model()
        x = rng.standard_normal((1, 32, 32, 3)).astype(np.float32)
        with Engine(model) as engine:
            engine.run(x)
            stats = engine.stats()
        assert stats.tuning_id == "none"
        assert stats.tuned_nodes == 0
