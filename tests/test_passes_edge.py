"""Edge-case tests for converter passes and executor corner cases."""

from __future__ import annotations

import numpy as np

from repro.converter import convert
from repro.core.types import Activation, Padding
from repro.graph.builder import GraphBuilder
from repro.graph.executor import Executor
from repro.graph.passes import (
    fuse_activation,
    fuse_batchnorm,
)
from repro.kernels.batchnorm import BatchNormParams


def _bn(rng, c):
    return BatchNormParams(
        gamma=rng.uniform(0.5, 1.5, c).astype(np.float32),
        beta=rng.standard_normal(c).astype(np.float32),
        mean=rng.standard_normal(c).astype(np.float32),
        variance=rng.uniform(0.3, 1.5, c).astype(np.float32),
    )


class TestBitpackedChainEdges:
    def test_not_applied_when_conv_is_graph_output(self, rng):
        b = GraphBuilder((1, 6, 6, 8))
        h = b.binarize(b.input)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        h2 = b.binarize(h)
        h2 = b.conv2d(
            h2, rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        # the *intermediate* float value is also a graph output
        g = b.finish(h2, h)
        model = convert(g)
        first = model.graph.ops_by_type("lce_bconv2d")[0]
        assert first.attr("output_type") == "float"

    def test_negative_multiplier_chain_exact(self, rng):
        """BN with negative gammas flips threshold direction; the chain
        must still be bit-exact."""
        b = GraphBuilder((1, 6, 6, 8))
        h = b.binarize(b.input)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        bn = BatchNormParams(
            gamma=np.where(rng.random(8) < 0.5, -1.0, 1.0).astype(np.float32)
            * rng.uniform(0.5, 1.5, 8).astype(np.float32),
            beta=rng.standard_normal(8).astype(np.float32),
            mean=np.zeros(8, np.float32),
            variance=np.ones(8, np.float32),
        )
        h = b.batch_norm(h, bn)
        h = b.binarize(h)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        g = b.finish(b.global_avgpool(h))
        x = rng.standard_normal((1, 6, 6, 8)).astype(np.float32)
        before = Executor(g).run(x)
        model = convert(g)
        chained = [
            n for n in model.graph.ops_by_type("lce_bconv2d")
            if n.attr("output_type") == "bitpacked"
        ]
        assert chained, "chain fusion should fire despite negative gammas"
        assert bool(chained[0].params["threshold_flip"].any())
        after = Executor(model.graph).run(x)
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-4)


class TestFuseBatchnormEdges:
    def test_bn_after_scaled_activated_bconv_stays(self, rng):
        """act already fused with an affine before it: a further BN is not
        representable and must remain standalone (correctness over zeal)."""
        b = GraphBuilder((1, 6, 6, 8))
        h = b.binarize(b.input)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        h = b.batch_norm(h, _bn(rng, 8))   # fuses as multiplier/bias
        h = b.relu(h)                       # fuses as activation (order True)
        h = b.batch_norm(h, _bn(rng, 8))   # NOT representable
        g = b.finish(h)
        x = rng.standard_normal((1, 6, 6, 8)).astype(np.float32)
        before = Executor(g).run(x)
        model = convert(g)
        assert len(model.graph.ops_by_type("batch_norm")) == 1
        after = Executor(model.graph).run(x)
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-4)

    def test_bn_with_fanout_input_not_fused(self, rng):
        b = GraphBuilder((1, 6, 6, 4))
        c = b.conv2d(b.input, rng.standard_normal((3, 3, 4, 4)).astype(np.float32))
        bn = b.batch_norm(c, _bn(rng, 4))
        g = b.finish(b.add(bn, c))  # conv output used twice
        assert not fuse_batchnorm(g)


class TestFuseActivationEdges:
    def test_relu6_fuses(self, rng):
        b = GraphBuilder((1, 4, 4, 2))
        h = b.conv2d(b.input, rng.standard_normal((3, 3, 2, 2)).astype(np.float32))
        h = b.relu6(h)
        g = b.finish(h)
        assert fuse_activation(g)
        assert Activation(g.ops_by_type("conv2d")[0].attrs["activation"]) is Activation.RELU6

    def test_softmax_never_fuses(self, rng):
        b = GraphBuilder((1, 4))
        h = b.dense(b.input, rng.standard_normal((4, 4)).astype(np.float32))
        h = b.softmax(h)
        g = b.finish(h)
        assert not fuse_activation(g)


class TestStridedChain:
    def test_strided_bconv_chain_exact(self, rng):
        """Downsampling bconv feeding a binarization still chains and
        stays exact (threshold path under stride-2 geometry)."""
        b = GraphBuilder((1, 8, 8, 8))
        h = b.binarize(b.input)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 16)).astype(np.float32),
            stride=2, padding=Padding.SAME_ONE, binary_weights=True,
        )
        h = b.batch_norm(h, _bn(rng, 16))
        h = b.binarize(h)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 16, 16)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        g = b.finish(b.global_avgpool(h))
        x = rng.standard_normal((1, 8, 8, 8)).astype(np.float32)
        before = Executor(g).run(x)
        model = convert(g)
        after = Executor(model.graph).run(x)
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-4)


class TestZeroPaddedChain:
    def test_zero_padded_bconv_chains_with_correction(self, rng):
        b = GraphBuilder((1, 6, 6, 8))
        h = b.binarize(b.input)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32),
            padding=Padding.SAME_ZERO, binary_weights=True,
        )
        h = b.batch_norm(h, _bn(rng, 8))
        h = b.binarize(h)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32),
            padding=Padding.SAME_ZERO, binary_weights=True,
        )
        g = b.finish(b.global_avgpool(h))
        x = rng.standard_normal((1, 6, 6, 8)).astype(np.float32)
        before = Executor(g).run(x)
        model = convert(g)
        first = model.graph.ops_by_type("lce_bconv2d")[0]
        assert first.attr("output_type") == "bitpacked"
        assert "padding_correction" in first.params
        after = Executor(model.graph).run(x)
        np.testing.assert_allclose(after, before, rtol=1e-4, atol=1e-4)


class TestExecutorLiveness:
    def test_tensor_that_is_output_and_consumed_survives(self, rng):
        b = GraphBuilder((1, 4))
        a = b.relu(b.input)
        c = b.relu(a)
        g = b.finish(a, c)  # `a` is both consumed and a graph output
        out_a, out_c = Executor(g).run(
            rng.standard_normal((1, 4)).astype(np.float32)
        )
        assert np.array_equal(out_c, np.maximum(out_a, 0))
