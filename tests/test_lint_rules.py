"""Seeded-violation tests for the repo lint engine (L-rules).

Each rule in :mod:`repro.analysis.lint` is exercised against a fixture
tree of known-bad snippets written under ``tmp_path`` — contract rules
are path-scoped (``core/``, ``runtime/``, ``ops/``), so the fixtures
recreate those directory shapes.  The real repo tree must lint clean,
and the ``repro.cli analyze`` entry point must exit non-zero on a
seeded violation.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.diagnostics import Severity, errors_of
from repro.analysis.lint import (
    ROOTS,
    check_specs,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_repo,
)

REPO = pathlib.Path(__file__).resolve().parent.parent


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _lint(tmp_path, relpath, source, **kwargs):
    return lint_file(_write(tmp_path, relpath, source), **kwargs)


def _rules(diags):
    return {d.rule for d in diags}


# ------------------------------------------------------------- style rules


def test_l001_syntax_error(tmp_path):
    diags = _lint(tmp_path, "pkg/broken.py", "def f(:\n")
    assert _rules(diags) == {"L001"}


def test_l002_non_utf8_file_is_reported_not_skipped(tmp_path):
    path = tmp_path / "latin1.py"
    path.write_bytes(b"# caf\xe9\nx = 1\n")
    diags = lint_file(path)
    assert _rules(diags) == {"L002"}
    assert diags[0].severity is Severity.ERROR


def test_l003_unused_import_as_alias(tmp_path):
    diags = _lint(tmp_path, "m.py", """\
        from os import path as p
        from os import sep

        print(sep)
        """)
    assert [d.rule for d in diags] == ["L003"]
    assert "path as p" in diags[0].message


def test_l003_unused_dotted_submodule_import(tmp_path):
    diags = _lint(tmp_path, "m.py", """\
        import os.path
        import json

        print(json.dumps({}))
        """)
    assert [d.rule for d in diags] == ["L003"]
    assert "os.path" in diags[0].message


def test_l003_dotted_import_used_via_root_binding(tmp_path):
    # `import a.b` binds `a`; using `a` anywhere counts as a use.
    assert not _lint(tmp_path, "m.py", """\
        import os.path

        print(os.path.sep)
        """)


def test_l003_skips_underscore_and_reexported_names(tmp_path):
    assert not _lint(tmp_path, "m.py", """\
        import json as _json
        from os import sep

        __all__ = ["sep"]
        """)


def test_l004_trailing_whitespace(tmp_path):
    diags = _lint(tmp_path, "m.py", "x = 1  \n")
    assert _rules(diags) == {"L004"}


def test_style_rules_can_be_disabled(tmp_path):
    assert not _lint(tmp_path, "m.py", "import json\n", style=False)


# ------------------------------------------------------------- suppression


def _allow(spec):
    # Built at runtime so this test file's own source never contains a
    # malformed suppression for the repo-tree lint to trip over.
    return "# repro: " + f"allow{spec}"


def test_l005_suppression_without_justification(tmp_path):
    diags = _lint(tmp_path, "m.py", f"import json  {_allow('[L003]')}\n")
    # The malformed suppression is an error AND does not suppress L003.
    assert _rules(diags) == {"L005", "L003"}


def test_l005_suppression_without_rule_ids(tmp_path):
    diags = _lint(tmp_path, "m.py", f"import json  {_allow('[] why not')}\n")
    assert "L005" in _rules(diags)


def test_justified_suppression_hides_the_finding(tmp_path):
    assert not _lint(
        tmp_path, "m.py",
        "import json  # repro: allow[L003] re-exported for plugins\n",
    )


def test_suppression_only_hides_the_named_rule(tmp_path):
    diags = _lint(
        tmp_path, "m.py",
        "import json  # repro: allow[L004] wrong rule named\n",
    )
    assert _rules(diags) == {"L003"}


# ------------------------------------------------- L101: kernel allocations


_KERNEL_BAD = """\
    import numpy as np

    def bgemm(x, out, workspace):
        scratch = np.empty((4, 4), np.float32)
        out[:] = x @ scratch
"""

_KERNEL_GUARDED = """\
    import numpy as np

    def bgemm(x, out, workspace=None):
        if workspace is None:
            scratch = np.empty((4, 4), np.float32)
        else:
            scratch = workspace.take((4, 4), np.float32)
        out[:] = x @ scratch

    def bgemm2(x, out, workspace=None):
        if workspace is not None:
            scratch = workspace.take((4, 4), np.float32)
        else:
            scratch = np.zeros((4, 4), np.float32)
        out[:] = x @ scratch
"""


def test_l101_unguarded_allocation_in_core_kernel(tmp_path):
    diags = _lint(tmp_path, "src/repro/core/k.py", _KERNEL_BAD, style=False)
    assert _rules(diags) == {"L101"}
    assert "np.empty" in diags[0].message


def test_l101_allocating_fallback_branches_are_allowed(tmp_path):
    assert not _lint(
        tmp_path, "src/repro/core/k.py", _KERNEL_GUARDED, style=False
    )


def test_l101_only_applies_to_workspace_kernels(tmp_path):
    # No `workspace` parameter -> not a steady-state kernel.
    assert not _lint(tmp_path, "src/repro/core/k.py", """\
        import numpy as np

        def pack(x):
            return np.zeros_like(x)
        """, style=False)


def test_l101_scoped_to_core_paths(tmp_path):
    assert not _lint(tmp_path, "src/repro/zoo/k.py", _KERNEL_BAD, style=False)


def test_l101_covers_serving_paths(tmp_path):
    diags = _lint(tmp_path, "src/repro/serving/k.py", _KERNEL_BAD, style=False)
    assert _rules(diags) == {"L101"}


def test_l101_covers_tune_paths(tmp_path):
    # The tuner's microbench calls workspace kernels in a tight loop; an
    # unguarded allocation there would time the allocator, not the kernel.
    diags = _lint(tmp_path, "src/repro/tune/k.py", _KERNEL_BAD, style=False)
    assert _rules(diags) == {"L101"}


def test_l101_covers_obs_contract_files(tmp_path):
    # The event log and SLO monitor sit on (or are driven from) the
    # serving hot path; they inherit the allocation discipline.
    diags = _lint(
        tmp_path, "src/repro/obs/events.py", _KERNEL_BAD, style=False
    )
    assert _rules(diags) == {"L101"}
    diags = _lint(tmp_path, "src/repro/obs/slo.py", _KERNEL_BAD, style=False)
    assert _rules(diags) == {"L101"}


def test_l101_other_obs_files_stay_out_of_scope(tmp_path):
    # export.py etc. are cold-path formatting; the contract is scoped to
    # the two hot-path obs modules only.
    assert not _lint(
        tmp_path, "src/repro/obs/export.py", _KERNEL_BAD, style=False
    )


def test_l101_suppression_with_reason(tmp_path):
    src = _KERNEL_BAD.replace(
        "np.empty((4, 4), np.float32)",
        "np.empty((4, 4), np.float32)  # repro: allow[L101] warmup only",
    )
    assert not _lint(tmp_path, "src/repro/core/k.py", src, style=False)


# ---------------------------------------------- L102: registry completeness


class _FakeSpec:
    def __init__(self, **kw):
        from repro.ops.registry import find_spec

        real = find_spec("relu")
        self.name = "fake_op"
        self.attrs = real.attrs
        self.infer = real.infer
        self.kernel = real.kernel
        self.cost = real.cost
        self.op_class = real.op_class
        for k, v in kw.items():
            setattr(self, k, v)


@pytest.mark.parametrize(
    "defect",
    [
        {"attrs": ["not-a-schema"]},
        {"infer": None},
        {"kernel": None},
        {"cost": None},
        {"op_class": "No Such Class"},
    ],
    ids=["attrs", "infer", "kernel", "cost", "op_class"],
)
def test_l102_incomplete_spec_is_an_error(defect):
    diags = check_specs([_FakeSpec(**defect)], exempt=frozenset())
    assert _rules(errors_of(diags)) == {"L102"}


def test_l102_cost_exemption_is_honored():
    diags = check_specs([_FakeSpec(cost=None)], exempt=frozenset({"fake_op"}))
    assert not errors_of(diags)


def test_l102_stale_exemption_warns():
    diags = check_specs([_FakeSpec()], exempt=frozenset({"ghost_op"}))
    assert not errors_of(diags)
    assert [d.rule for d in diags] == ["L102"]
    assert "stale" in diags[0].message


def test_l102_live_registry_is_complete():
    assert not errors_of(check_specs())


# ------------------------------------------------ L103: unguarded caches


_CACHE_BAD = """\
    _CACHE = {}

    def lookup(key):
        if key not in _CACHE:
            _CACHE[key] = compute(key)
        return _CACHE[key]
"""

_CACHE_GOOD = """\
    import threading

    _CACHE = {}
    _LOCK = threading.Lock()

    def lookup(key):
        with _LOCK:
            if key not in _CACHE:
                _CACHE[key] = compute(key)
            return _CACHE[key]
"""


def test_l103_cache_mutation_without_module_lock(tmp_path):
    diags = _lint(
        tmp_path, "src/repro/runtime/cache.py", _CACHE_BAD, style=False
    )
    assert _rules(diags) == {"L103"}


def test_l103_module_lock_satisfies_the_rule(tmp_path):
    assert not _lint(
        tmp_path, "src/repro/runtime/cache.py", _CACHE_GOOD, style=False
    )


def test_l103_scoped_to_core_and_runtime(tmp_path):
    assert not _lint(
        tmp_path, "src/repro/experiments/cache.py", _CACHE_BAD, style=False
    )


def test_l103_covers_serving_paths(tmp_path):
    diags = _lint(
        tmp_path, "src/repro/serving/cache.py", _CACHE_BAD, style=False
    )
    assert _rules(diags) == {"L103"}


def test_l103_covers_tune_paths(tmp_path):
    # Tuning caches are consulted from plan compilation, which can race
    # across engine threads like any runtime module cache.
    diags = _lint(
        tmp_path, "src/repro/tune/memo.py", _CACHE_BAD, style=False
    )
    assert _rules(diags) == {"L103"}


def test_l103_covers_hw_calibrate(tmp_path):
    # The calibration recorder drives the engine; a module-level sample
    # cache mutated without a lock is the same hazard as in runtime/.
    diags = _lint(
        tmp_path, "src/repro/hw/calibrate.py", _CACHE_BAD, style=False
    )
    assert _rules(diags) == {"L103"}


def test_l103_rest_of_hw_stays_exempt(tmp_path):
    assert not _lint(
        tmp_path, "src/repro/hw/device.py", _CACHE_BAD, style=False
    )


# -------------------------------------------------- L104: nondeterminism


def test_l104_entropy_sources_in_plan_paths(tmp_path):
    diags = _lint(tmp_path, "src/repro/ops/noisy.py", """\
        import time

        import numpy as np

        def jitter():
            return np.random.default_rng().random() + time.time()
        """, style=False)
    assert _rules(diags) == {"L104"}
    messages = " ".join(d.message for d in diags)
    assert "np.random" in messages and "time.time" in messages


def test_l104_monotonic_timers_are_exempt(tmp_path):
    assert not _lint(tmp_path, "src/repro/runtime/timer.py", """\
        import time

        def tick():
            return time.perf_counter()
        """, style=False)


def test_l104_scoped_to_plan_paths(tmp_path):
    assert not _lint(tmp_path, "src/repro/zoo/init.py", """\
        import numpy as np

        def weights(shape):
            return np.random.default_rng(0).standard_normal(shape)
        """, style=False)


def test_l104_covers_serving_paths(tmp_path):
    # The serving layer inherits the determinism contract: wall-clock
    # reads or ambient entropy in the gateway would break FakeClock tests.
    diags = _lint(tmp_path, "src/repro/serving/sched.py", """\
        import time

        import numpy as np

        def jitter_deadline(ms):
            return ms + np.random.default_rng().random() + time.time()
        """, style=False)
    assert _rules(diags) == {"L104"}


def test_l104_covers_obs_paths(tmp_path):
    # Wall-clock reads in the SLO monitor would make window edges
    # non-reproducible under a FakeClock; only monotonic timers (or the
    # injected `now` callable) are legal.
    diags = _lint(tmp_path, "src/repro/obs/slo.py", """\
        import time

        def sample_ts():
            return time.time()
        """, style=False)
    assert _rules(diags) == {"L104"}


def test_l104_covers_tune_paths(tmp_path):
    # Wall-clock reads in tune/ must stay confined to the declared
    # microbench boundary (monotonic timer + justified suppression);
    # ambient entropy or time.time() anywhere else is an error.
    diags = _lint(tmp_path, "src/repro/tune/drift.py", """\
        import time

        import numpy as np

        def jitter():
            return np.random.default_rng().random() + time.time()
        """, style=False)
    assert _rules(diags) == {"L104"}


def test_l104_real_tune_search_module_is_clean():
    # The shipped tuner passes its own gate: the monotonic perf_counter
    # timer is exempt by design and the single seeded RNG that builds
    # microbench inputs carries a justified allow[L104].
    import pathlib

    import repro.tune.search as search

    path = pathlib.Path(search.__file__)
    assert not [d for d in lint_file(path, style=False)
                if d.rule in {"L101", "L103", "L104"}]


def test_l104_covers_hw_calibrate(tmp_path):
    # Wall-clock reads outside the tracer's recording boundary would make
    # calibration fits unreproducible; the file is held to the plan-path
    # determinism contract even though the rest of hw/ is pure math.
    diags = _lint(tmp_path, "src/repro/hw/calibrate.py", """\
        import time

        import numpy as np

        def sample_now():
            return np.random.default_rng().random() + time.time()
        """, style=False)
    assert _rules(diags) == {"L104"}
    messages = " ".join(d.message for d in diags)
    assert "np.random" in messages and "time.time" in messages


def test_l104_rest_of_hw_stays_exempt(tmp_path):
    assert not _lint(tmp_path, "src/repro/hw/frameworks.py", """\
        import numpy as np

        def perturb(x):
            return x + np.random.default_rng(0).random()
        """, style=False)


def test_l104_real_calibrate_module_is_clean():
    # The shipped recorder passes its own gate: the single seeded RNG at
    # the recording boundary carries a justified allow[L104].
    import pathlib

    import repro.hw.calibrate as calibrate

    path = pathlib.Path(calibrate.__file__)
    assert not [d for d in lint_file(path, style=False)
                if d.rule in {"L103", "L104"}]


# ------------------------------------------------------------ tree drivers


def test_iter_python_files_walks_directories(tmp_path):
    a = _write(tmp_path, "pkg/a.py", "x = 1\n")
    b = _write(tmp_path, "pkg/sub/b.py", "y = 2\n")
    _write(tmp_path, "pkg/notes.txt", "not python\n")
    assert iter_python_files([tmp_path]) == [a, b]
    assert iter_python_files([a]) == [a]


def test_lint_paths_aggregates_and_relativizes(tmp_path):
    _write(tmp_path, "src/repro/core/bad.py", _KERNEL_BAD)
    _write(tmp_path, "src/repro/runtime/bad.py", _CACHE_BAD)
    diags = lint_paths([tmp_path / "src"], root=tmp_path, style=False)
    assert _rules(diags) == {"L101", "L103"}
    for d in diags:
        assert not pathlib.Path(d.location.rsplit(":", 1)[0]).is_absolute()


def test_repo_source_tree_lints_clean():
    """The gate `make analyze` enforces: our own tree has zero errors."""
    diags = lint_repo(REPO, style=True)
    assert not errors_of(diags), "\n".join(d.format() for d in diags)


# -------------------------------------------------------- CLI entry point


def _run_cli(*argv, cwd=REPO):
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, cwd=cwd, env=env,
    )


def test_cli_analyze_clean_source_exits_zero(tmp_path):
    _write(tmp_path, "clean.py", "x = 1\n")
    proc = _run_cli("analyze", "--source", str(tmp_path))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s)" in proc.stdout


def test_cli_analyze_seeded_violation_exits_nonzero(tmp_path):
    bad = _write(tmp_path, "src/repro/core/bad.py", _KERNEL_BAD)
    proc = _run_cli("analyze", "--source", str(bad))
    assert proc.returncode == 1
    assert "[L101]" in proc.stdout


def test_cli_analyze_json_format(tmp_path):
    bad = _write(tmp_path, "src/repro/core/bad.py", _KERNEL_BAD)
    proc = _run_cli("analyze", "--source", str(bad), "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["errors"] == 1
    assert payload["diagnostics"][0]["rule"] == "L101"


def test_cli_analyze_model_gate(tmp_path):
    proc = _run_cli("analyze", "--model", "quicknet_small", "--input-size", "64")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s)" in proc.stdout


def test_tools_lint_runs_clean():
    env = {"PATH": "/usr/bin:/bin"}
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "lint.py")],
        capture_output=True, text=True, cwd=REPO, env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_roots_exist():
    for r in ROOTS:
        assert (REPO / r).exists(), r
