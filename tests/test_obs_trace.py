"""Unit tests for structured spans and Chrome-trace export.

Nesting semantics, ring-buffer bounds, ambient activation, the shared
no-op tracer, trace_event schema validation (including seeded
violations), and the end-to-end contract: a traced QuickNet-small engine
run exports a valid nested trace with one ``plan.node`` span per graph
node.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro import cli
from repro.converter import convert
from repro.obs.export import (
    chrome_trace,
    flamegraph_lines,
    node_seconds,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    iter_children,
)
from repro.runtime import Engine
from repro.zoo import quicknet


class TestSpans:
    def test_nesting_records_paths(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("mid"):
                with tracer.span("inner"):
                    pass
            with tracer.span("mid2"):
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].path == ()
        assert spans["mid"].path == ("outer",)
        assert spans["inner"].path == ("outer", "mid")
        assert spans["mid2"].path == ("outer",)
        assert spans["outer"].args == {"kind": "test"}
        # children lie within the parent interval
        assert spans["outer"].start_s <= spans["mid"].start_s
        assert spans["mid"].end_s <= spans["outer"].end_s

    def test_spans_sorted_by_start(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        names = [s.name for s in tracer.spans()]
        assert names == ["a", "b"]

    def test_record_attributes_to_current_stack(self):
        tracer = Tracer()
        with tracer.span("parent"):
            t0 = time.perf_counter()
            tracer.record("leaf", t0, 1e-6, m=3)
        leaf = next(s for s in tracer.spans() if s.name == "leaf")
        assert leaf.path == ("parent",)
        assert leaf.args == {"m": 3}
        assert leaf.dur_s == 1e-6

    def test_span_exposes_duration_after_exit(self):
        tracer = Tracer()
        with tracer.span("timed") as sp:
            pass
        assert isinstance(sp, Span) and sp.dur_s >= 0

    def test_ring_overwrites_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["s6", "s7", "s8", "s9"]
        assert tracer.dropped == 6

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_clear(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        tracer.clear()
        assert tracer.spans() == [] and tracer.dropped == 0

    def test_iter_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child"):
                pass
        spans = tracer.spans()
        root = next(s for s in spans if s.name == "root")
        kids = list(iter_children(spans, root))
        assert [s.name for s in kids] == ["child", "child"]


class TestAmbientActivation:
    def test_default_is_null(self):
        assert active_tracer() is NULL_TRACER

    def test_enabled_span_installs_and_restores(self):
        tracer = Tracer()
        with tracer.span("outer"):
            assert active_tracer() is tracer
            inner = Tracer()
            with inner.span("nested"):
                assert active_tracer() is inner
            assert active_tracer() is tracer
        assert active_tracer() is NULL_TRACER


class TestNullTracer:
    def test_shared_singleton_span(self):
        """The disabled tracer never allocates span objects."""
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
        sp1 = NULL_TRACER.span("a")
        sp2 = NULL_TRACER.span("b")
        assert sp1 is sp2  # one process-wide no-op span, reused forever
        with sp1 as entered:
            assert entered is sp1
        assert sp1.dur_s == 0.0

    def test_noop_surface(self):
        NULL_TRACER.record("x", 0.0, 1.0)
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.dropped == 0
        NULL_TRACER.clear()


class TestChromeExport:
    def test_schema_and_wall_anchor(self):
        tracer = Tracer()
        before_us = time.time() * 1e6
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        obj = chrome_trace(tracer)
        assert validate_chrome_trace(obj) == []
        assert obj["displayTimeUnit"] == "ms"
        xs = [e for e in obj["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in obj["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in ms} == {"process_name", "thread_name"}
        assert {e["name"] for e in xs} == {"outer", "inner"}
        inner = next(e for e in xs if e["name"] == "inner")
        assert inner["cat"] == "outer" and inner["args"] == {}
        # ts is wall-clock microseconds anchored at tracer construction
        assert abs(inner["ts"] - before_us) < 60e6

    def test_write_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        path = tmp_path / "trace.json"
        obj = write_chrome_trace(tracer, path)
        assert json.loads(path.read_text()) == json.loads(json.dumps(obj))

    def test_validation_catches_seeded_violations(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []
        base = {"ph": "X", "ts": 0.0, "dur": 1.0, "pid": 1, "tid": 1, "args": {}}
        problems = validate_chrome_trace(
            {"traceEvents": [dict(base)]}  # missing name
        )
        assert any("name" in p for p in problems)
        problems = validate_chrome_trace(
            {"traceEvents": [dict(base, name="bad", ph="Z")]}
        )
        assert any("ph" in p for p in problems)
        problems = validate_chrome_trace(
            {"traceEvents": [dict(base, name="neg", dur=-1.0)]}
        )
        assert any("negative" in p for p in problems)

    def test_validation_catches_broken_nesting(self):
        """A child interval escaping its parent is a schema violation."""
        base = {"ph": "X", "pid": 1, "tid": 7, "args": {}}
        events = [
            dict(base, name="parent", ts=0.0, dur=10.0),
            dict(base, name="escapee", ts=5.0, dur=10.0),  # ends at 15 > 10
        ]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("escapes" in p for p in problems)

    def test_node_seconds_filters_by_span_name(self):
        tracer = Tracer()
        tracer.record("plan.node", 0.0, 0.25, node="conv", op="conv2d")
        tracer.record("plan.node", 1.0, 0.5, node="conv", op="conv2d")
        tracer.record("kernel.bgemm", 0.0, 9.0, m=1, n=1)
        assert node_seconds(tracer.spans()) == {"conv": pytest.approx(0.75)}

    def test_flamegraph_lines(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
            with tracer.span("leaf"):
                pass
        lines = flamegraph_lines(tracer.spans())
        assert len(lines) == 2
        assert lines[0].startswith("root") and "calls=1" in lines[0]
        assert lines[1].strip().startswith("leaf") and "calls=2" in lines[1]


class TestEngineTrace:
    def test_quicknet_trace_nested_and_complete(self):
        """ISSUE acceptance: one QuickNet-small run exports a valid trace
        with nested spans and one ``plan.node`` span per graph node."""
        model = convert(quicknet("small", input_size=32), in_place=True)
        tracer = Tracer()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 32, 32, 3)).astype(np.float32)
        with Engine(model, trace=tracer) as engine:
            engine.run(x)

        spans = tracer.spans()
        by_name: dict[str, int] = {}
        for s in spans:
            by_name[s.name] = by_name.get(s.name, 0) + 1
        assert by_name["engine.run"] == 1
        assert by_name["plan.execute"] == 1
        assert by_name["plan.node"] == len(model.graph.nodes)
        assert by_name.get("kernel.bgemm", 0) > 0
        assert by_name.get("workspace.acquire", 0) > 0

        node_spans = [s for s in spans if s.name == "plan.node"]
        assert {s.args["node"] for s in node_spans} == {
            n.name for n in model.graph.nodes
        }
        # every plan.node is nested under engine.run -> plan.execute
        assert all(
            s.path == ("engine.run", "plan.execute") for s in node_spans
        )
        # kernel spans sit under their plan.node
        bgemm = [s for s in spans if s.name == "kernel.bgemm"]
        assert all(s.path[:2] == ("engine.run", "plan.execute") for s in bgemm)
        assert all(s.path[2] == "plan.node" for s in bgemm)

        obj = chrome_trace(tracer)
        assert validate_chrome_trace(obj) == []
        measured = node_seconds(spans)
        assert set(measured) == {n.name for n in model.graph.nodes}

    def test_run_many_and_submit_span_shapes(self, rng):
        model = convert(quicknet("small", input_size=32), in_place=True)
        tracer = Tracer()
        x = rng.standard_normal((1, 32, 32, 3)).astype(np.float32)
        with Engine(model, trace=tracer, max_batch_size=2) as engine:
            engine.run_many([x, x, x])
            engine.submit(x).result(timeout=30)
        names = {s.name for s in tracer.spans()}
        assert "engine.run_many" in names
        assert "batch.coalesce" in names
        assert "engine.submit" in names
        coalesce = next(
            s for s in tracer.spans() if s.name == "batch.coalesce"
        )
        assert coalesce.args["requests"] == 3 and coalesce.args["chunks"] == 2
        assert validate_chrome_trace(chrome_trace(tracer)) == []


class TestCli:
    def test_trace_command(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = cli.main(
            ["trace", "quicknet_small", "--input-size", "32",
             "--batch", "2", "--out", str(out)]
        )
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "perfetto" in stdout and "engine.run" in stdout
        obj = json.loads(out.read_text())
        assert validate_chrome_trace(obj) == []
        assert any(
            e["name"] == "plan.node" for e in obj["traceEvents"]
        )

    def test_stats_command(self, capsys):
        rc = cli.main(
            ["stats", "--model", "quicknet_small", "--input-size", "32",
             "--batch", "2", "--repeats", "1"]
        )
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "unified metrics registry" in stdout
        assert "engine.requests" in stdout
        assert "engine.batch_size" in stdout
        assert "indirection.entries" in stdout
        assert "paramcache.hits" in stdout
