"""Concurrency and coalescing stress tests for the runtime Engine.

Complements :mod:`test_runtime_parity`: the parity suite proves one call is
bit-exact; these tests prove the *engine machinery* keeps that property
under concurrent callers, the async micro-batching worker, and arbitrary
request/coalescing geometries (ragged tails, oversize requests).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.types import Padding
from repro.runtime import Engine
from test_runtime_parity import (
    _batched_input,
    _binary_net,
    assert_bit_identical,
    reference_outputs,
)

FACTORS = (1, 2, 3)


@pytest.fixture(scope="module")
def shared_case():
    """One graph plus a precomputed (input, reference) per batch factor."""
    rng = np.random.default_rng(7)
    graph = _binary_net(rng, Padding.SAME_ONE)
    cases = {}
    for factor in FACTORS:
        x = _batched_input(graph, factor, rng)
        cases[factor] = (x, reference_outputs(graph, (x,), factor))
    return graph, cases


class TestThreadSafety:
    def test_shared_engine_across_threads(self, shared_case):
        """8 threads hammer one Engine with mixed shapes via run/run_many/
        submit; every result must stay bit-identical to its reference."""
        graph, cases = shared_case
        num_client_threads = 8
        iterations = 6
        errors: list[BaseException] = []
        barrier = threading.Barrier(num_client_threads)

        def client(tid: int) -> None:
            try:
                barrier.wait()  # maximize overlap
                for i in range(iterations):
                    factor = FACTORS[(tid + i) % len(FACTORS)]
                    x, expected = cases[factor]
                    mode = (tid + i) % 3
                    if mode == 0:
                        assert_bit_identical(engine.run(x), expected)
                    elif mode == 1:
                        other = FACTORS[(tid + i + 1) % len(FACTORS)]
                        results = engine.run_many([x, cases[other][0]])
                        assert_bit_identical(results[0], expected)
                        assert_bit_identical(results[1], cases[other][1])
                    else:
                        assert_bit_identical(engine.submit(x).result(30), expected)
            except BaseException as exc:  # surface in the main thread
                errors.append(exc)

        with Engine(graph, num_threads=2, max_batch_size=4) as engine:
            threads = [
                threading.Thread(target=client, args=(tid,))
                for tid in range(num_client_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = engine.stats()

        if errors:
            raise errors[0]
        expected_requests = 0
        for tid in range(num_client_threads):
            for i in range(iterations):
                expected_requests += 2 if (tid + i) % 3 == 1 else 1
        assert stats.requests == expected_requests
        assert stats.samples == sum(
            size * n for size, n in stats.batch_histogram.items()
        )

    def test_submit_after_close_rejected(self, shared_case):
        graph, cases = shared_case
        engine = Engine(graph)
        x, expected = cases[1]
        assert_bit_identical(engine.submit(x).result(30), expected)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(x)
        # run() stays usable after close
        assert_bit_identical(engine.run(x), expected)
        engine.close()  # idempotent


class TestCoalescingFuzz:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_request_streams(self, shared_case, seed):
        """Random request sizes and batch caps: results per request must
        match the per-request references however the stream is chunked."""
        graph, cases = shared_case
        rng = np.random.default_rng(seed)
        max_batch_size = int(rng.integers(1, 5))
        sizes = [int(rng.integers(1, len(FACTORS) + 1)) for _ in range(12)]
        with Engine(graph, max_batch_size=max_batch_size) as engine:
            results = engine.run_many([cases[k][0] for k in sizes])
            stats = engine.stats()
        for k, result in zip(sizes, results):
            assert_bit_identical(result, cases[k][1])
        # Coalescing invariants: every request accounted for, no micro-batch
        # exceeds the cap unless a single request was itself oversize.
        assert stats.requests == len(sizes)
        assert stats.samples == sum(sizes)
        for size, count in stats.batch_histogram.items():
            assert size <= max_batch_size or size in sizes

    def test_oversize_request_runs_alone(self, shared_case):
        graph, cases = shared_case
        x, expected = cases[3]
        with Engine(graph, max_batch_size=2) as engine:
            [result] = engine.run_many([x])
            assert_bit_identical(result, expected)
            assert engine.stats().batch_histogram == {3: 1}

    def test_ragged_tail_forms_final_microbatch(self, shared_case):
        graph, cases = shared_case
        sizes = [2, 2, 1]  # cap 4 -> chunks [2, 2] and ragged [1]
        with Engine(graph, max_batch_size=4) as engine:
            results = engine.run_many([cases[k][0] for k in sizes])
            stats = engine.stats()
        for k, result in zip(sizes, results):
            assert_bit_identical(result, cases[k][1])
        assert stats.batch_histogram == {4: 1, 1: 1}
