"""Tests for post-training int8 quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import Activation, Padding
from repro.graph.builder import GraphBuilder
from repro.graph.executor import Executor
from repro.hw.device import DeviceModel
from repro.hw.latency import graph_latency
from repro.ptq import calibrate, quantize_model


def _float_net(rng):
    b = GraphBuilder((1, 10, 10, 3))
    x = b.conv2d(
        b.input, rng.standard_normal((3, 3, 3, 8)).astype(np.float32),
        bias=rng.standard_normal(8).astype(np.float32),
        activation=Activation.RELU,
    )
    x = b.conv2d(x, rng.standard_normal((3, 3, 8, 8)).astype(np.float32), stride=2)
    x = b.global_avgpool(x)
    x = b.dense(x, rng.standard_normal((8, 5)).astype(np.float32))
    return b.finish(x)


@pytest.fixture
def float_net_and_data(rng):
    g = _float_net(rng)
    calib = [rng.standard_normal((1, 10, 10, 3)).astype(np.float32) for _ in range(4)]
    return g, calib


class TestCalibration:
    def test_records_all_float_tensors(self, float_net_and_data):
        g, calib = float_net_and_data
        ranges = calibrate(g, calib)
        for node in g.nodes:
            assert node.outputs[0] in ranges.ranges

    def test_ranges_widen_across_batches(self, rng):
        g = _float_net(rng)
        small = [0.1 * rng.standard_normal((1, 10, 10, 3)).astype(np.float32)]
        big = small + [5.0 * rng.standard_normal((1, 10, 10, 3)).astype(np.float32)]
        lo_s, hi_s = calibrate(g, small).range_of("input")
        lo_b, hi_b = calibrate(g, big).range_of("input")
        assert lo_b <= lo_s and hi_b >= hi_s

    def test_empty_batches_rejected(self, rng):
        with pytest.raises(ValueError):
            calibrate(_float_net(rng), [])

    def test_unknown_tensor_rejected(self, float_net_and_data):
        g, calib = float_net_and_data
        with pytest.raises(KeyError):
            calibrate(g, calib).range_of("nope")


class TestQuantizeModel:
    def test_structure(self, float_net_and_data):
        g, calib = float_net_and_data
        qg = quantize_model(g, calib)
        qg.verify()
        ops = [n.op for n in qg.nodes]
        assert "conv2d" not in ops and "dense" not in ops
        assert ops.count("conv2d_int8") == 2
        assert ops.count("dense_int8") == 1

    def test_adjacent_int8_ops_chain_directly(self, float_net_and_data):
        g, calib = float_net_and_data
        qg = quantize_model(g, calib)
        convs = qg.ops_by_type("conv2d_int8")
        # conv2 reads conv1's int8 output (directly or via requantize),
        # never through a float round-trip.
        producer = qg.producer(convs[1].inputs[0])
        assert producer.op in ("conv2d_int8", "requantize_int8")

    def test_accuracy_on_calibration_distribution(self, float_net_and_data):
        g, calib = float_net_and_data
        qg = quantize_model(g, calib)
        ref = Executor(g).run(calib[0])
        got = Executor(qg).run(calib[0])
        rel = np.abs(got - ref).max() / (np.abs(ref).max() + 1e-9)
        assert rel < 0.05

    def test_fused_relu_respected(self, rng):
        b = GraphBuilder((1, 6, 6, 2))
        x = b.conv2d(
            b.input, rng.standard_normal((3, 3, 2, 4)).astype(np.float32),
            activation=Activation.RELU,
        )
        g = b.finish(x)
        calib = [rng.standard_normal((1, 6, 6, 2)).astype(np.float32)]
        qg = quantize_model(g, calib)
        out = Executor(qg).run(calib[0])
        assert np.all(out >= -1e-6)

    def test_binary_convs_untouched(self, rng):
        b = GraphBuilder((1, 8, 8, 8))
        h = b.binarize(b.input)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        g = b.finish(b.global_avgpool(h))
        calib = [rng.standard_normal((1, 8, 8, 8)).astype(np.float32)]
        qg = quantize_model(g, calib)
        assert len(qg.ops_by_type("conv2d")) == 1
        assert not qg.ops_by_type("conv2d_int8")

    def test_in_place_flag(self, float_net_and_data):
        g, calib = float_net_and_data
        n_before = len(g)
        quantize_model(g, calib, in_place=False)
        assert len(g) == n_before

    def test_int8_model_faster_on_device(self, rng):
        # Needs real work per layer: at tiny sizes the extra quantize ops
        # outweigh the modest int8-vs-float GEMM gain (which is itself the
        # paper's point about the Pixel 1's weak int8 path).
        b = GraphBuilder((1, 28, 28, 32))
        x = b.conv2d(b.input, rng.standard_normal((3, 3, 32, 64)).astype(np.float32))
        x = b.conv2d(x, rng.standard_normal((3, 3, 64, 64)).astype(np.float32))
        g = b.finish(b.global_avgpool(x))
        calib = [rng.standard_normal((1, 28, 28, 32)).astype(np.float32)]
        qg = quantize_model(g, calib)
        dev = DeviceModel.pixel1()
        assert graph_latency(dev, qg).total_s < graph_latency(dev, g).total_s

    def test_int8_model_params_smaller(self, float_net_and_data):
        g, calib = float_net_and_data
        qg = quantize_model(g, calib)
        assert qg.param_nbytes() < g.param_nbytes() / 2

    def test_serialization_roundtrip(self, float_net_and_data, tmp_path):
        from repro.graph.serialization import load_model, save_model

        g, calib = float_net_and_data
        qg = quantize_model(g, calib)
        save_model(qg, tmp_path / "int8.lce")
        g2 = load_model(tmp_path / "int8.lce")
        assert np.array_equal(Executor(qg).run(calib[0]), Executor(g2).run(calib[0]))


class TestCollapseRequant:
    def test_no_collapse_across_fanout(self, rng):
        b = GraphBuilder((1, 4, 4, 2))
        x = b.conv2d(b.input, rng.standard_normal((1, 1, 2, 2)).astype(np.float32))
        y = b.relu(x)
        g = b.finish(b.add(x, y))
        calib = [rng.standard_normal((1, 4, 4, 2)).astype(np.float32)]
        qg = quantize_model(g, calib)
        qg.verify()
        # the dequantize feeding two consumers must survive
        ref = Executor(g).run(calib[0])
        got = Executor(qg).run(calib[0])
        assert np.abs(got - ref).max() / np.abs(ref).max() < 0.05


class TestModelPrecisionExperiment:
    def test_binary_beats_int8_beats_float(self):
        from repro.experiments.model_precision import run

        results = {r.precision: r for r in run("pixel1", input_size=64)}
        assert (
            results["binary (LCE)"].latency_ms
            < results["int8 (PTQ)"].latency_ms
            < results["float32"].latency_ms
        )
        assert (
            results["binary (LCE)"].param_bytes
            < results["int8 (PTQ)"].param_bytes
            < results["float32"].param_bytes
        )


class TestPoolSink:
    def test_maxpool_runs_in_int8(self, rng):
        b = GraphBuilder((1, 12, 12, 3))
        x = b.conv2d(b.input, rng.standard_normal((3, 3, 3, 8)).astype(np.float32))
        x = b.maxpool2d(x, 2, 2)
        x = b.conv2d(x, rng.standard_normal((3, 3, 8, 8)).astype(np.float32))
        g = b.finish(b.global_avgpool(x))
        calib = [rng.standard_normal((1, 12, 12, 3)).astype(np.float32)]
        qg = quantize_model(g, calib)
        pool = qg.ops_by_type("maxpool2d")[0]
        assert qg.tensors[pool.outputs[0]].dtype == "int8"
        assert not qg.ops_by_type("quantize_int8")[1:]  # only the input one

    def test_sunk_pool_is_numerically_safe(self, rng):
        """max commutes with the affine quantization, so sinking is exact
        up to the requantization the boundary already implied."""
        b = GraphBuilder((1, 8, 8, 4))
        x = b.conv2d(b.input, rng.standard_normal((3, 3, 4, 4)).astype(np.float32))
        x = b.maxpool2d(x, 2, 2)
        x = b.conv2d(x, rng.standard_normal((1, 1, 4, 4)).astype(np.float32))
        g = b.finish(b.global_avgpool(x))
        calib = [rng.standard_normal((1, 8, 8, 4)).astype(np.float32) for _ in range(3)]
        qg = quantize_model(g, calib)
        ref = Executor(g).run(calib[0])
        got = Executor(qg).run(calib[0])
        assert np.abs(got - ref).max() / (np.abs(ref).max() + 1e-9) < 0.05


class TestBatchNormPrefusion:
    def test_bn_folded_before_quantization(self, rng):
        from repro.kernels.batchnorm import BatchNormParams

        b = GraphBuilder((1, 8, 8, 3))
        x = b.conv2d(b.input, rng.standard_normal((3, 3, 3, 4)).astype(np.float32))
        x = b.batch_norm(
            x,
            BatchNormParams(
                gamma=rng.uniform(0.5, 1.5, 4).astype(np.float32),
                beta=rng.standard_normal(4).astype(np.float32),
                mean=rng.standard_normal(4).astype(np.float32),
                variance=rng.uniform(0.5, 1.5, 4).astype(np.float32),
            ),
        )
        g = b.finish(b.global_avgpool(x))
        calib = [rng.standard_normal((1, 8, 8, 3)).astype(np.float32) for _ in range(3)]
        qg = quantize_model(g, calib)
        assert not qg.ops_by_type("batch_norm")
        ref = Executor(g).run(calib[0])
        got = Executor(qg).run(calib[0])
        assert np.abs(got - ref).max() / np.abs(ref).max() < 0.05

    def test_original_graph_untouched(self, rng):
        from repro.kernels.batchnorm import BatchNormParams

        b = GraphBuilder((1, 8, 8, 3))
        x = b.conv2d(b.input, rng.standard_normal((3, 3, 3, 4)).astype(np.float32))
        x = b.batch_norm(x, BatchNormParams.identity(4))
        g = b.finish(b.global_avgpool(x))
        calib = [rng.standard_normal((1, 8, 8, 3)).astype(np.float32)]
        quantize_model(g, calib, in_place=False)
        assert g.ops_by_type("batch_norm")


class TestResidualAdds:
    def _residual_net(self, rng):
        b = GraphBuilder((1, 10, 10, 4))
        x = b.conv2d(b.input, rng.standard_normal((3, 3, 4, 4)).astype(np.float32) * 0.3)
        h = b.conv2d(x, rng.standard_normal((3, 3, 4, 4)).astype(np.float32) * 0.3)
        x = b.add(h, x)
        x = b.conv2d(x, rng.standard_normal((3, 3, 4, 4)).astype(np.float32) * 0.3)
        return b.finish(b.global_avgpool(x))

    def test_add_runs_in_int8(self, rng):
        g = self._residual_net(rng)
        calib = [rng.standard_normal((1, 10, 10, 4)).astype(np.float32) for _ in range(3)]
        qg = quantize_model(g, calib)
        assert qg.ops_by_type("add_int8")
        assert not qg.ops_by_type("add")

    def test_residual_numerics(self, rng):
        g = self._residual_net(rng)
        calib = [rng.standard_normal((1, 10, 10, 4)).astype(np.float32) for _ in range(3)]
        qg = quantize_model(g, calib)
        ref = Executor(g).run(calib[0])
        got = Executor(qg).run(calib[0])
        assert np.abs(got - ref).max() / np.abs(ref).max() < 0.06

    def test_full_resnet18_quantizes_end_to_end(self, rng):
        """The complete float ResNet-18 becomes an almost fully int8 graph:
        every conv, most residual adds, and the ReLUs between them run
        quantized.  A couple of stage-boundary adds whose shortcut operand
        fans out stay float (TFLite leaves such stragglers too)."""
        from repro.zoo import resnet18_float

        g = resnet18_float(input_size=64)
        calib = [rng.standard_normal((1, 64, 64, 3)).astype(np.float32)]
        qg = quantize_model(g, calib)
        assert not qg.ops_by_type("conv2d")
        assert len(qg.ops_by_type("add_int8")) >= 6
        assert len(qg.ops_by_type("add")) <= 2
        assert len(qg.ops_by_type("relu_int8")) >= 6

    def test_relu_sink_numerics(self, rng):
        b = GraphBuilder((1, 8, 8, 4))
        x = b.conv2d(b.input, rng.standard_normal((3, 3, 4, 4)).astype(np.float32))
        x = b.relu(x)
        x = b.conv2d(x, rng.standard_normal((3, 3, 4, 4)).astype(np.float32))
        g = b.finish(b.global_avgpool(x))
        calib = [rng.standard_normal((1, 8, 8, 4)).astype(np.float32) for _ in range(3)]
        qg = quantize_model(g, calib)
        assert not qg.ops_by_type("relu")  # fused into the conv or sunk
        ref = Executor(g).run(calib[0])
        got = Executor(qg).run(calib[0])
        assert np.abs(got - ref).max() / (np.abs(ref).max() + 1e-9) < 0.06


class TestHybridDeployment:
    def test_ptq_composes_with_converted_binary_graph(self, rng):
        """Binary convs + int8 fp layers: PTQ applies cleanly *after* the
        LCE converter, leaving every binarized op untouched."""
        from repro.converter import convert
        from repro.zoo import quicknet

        model = convert(quicknet("small", input_size=64), in_place=True)
        calib = [rng.standard_normal((1, 64, 64, 3)).astype(np.float32)]
        hybrid = quantize_model(model.graph, calib)
        n_bconv_before = len(model.graph.ops_by_type("lce_bconv2d"))
        assert len(hybrid.ops_by_type("lce_bconv2d")) == n_bconv_before
        assert hybrid.ops_by_type("conv2d_int8")
        assert not hybrid.ops_by_type("conv2d")
        a = Executor(model.graph).run(calib[0])
        b = Executor(hybrid).run(calib[0])
        assert a.argmax() == b.argmax()

    def test_hybrid_faster_than_binary_only(self, rng):
        from repro.converter import convert
        from repro.zoo import quicknet

        model = convert(quicknet("small", input_size=224), in_place=True)
        calib = [rng.standard_normal((1, 224, 224, 3)).astype(np.float32)]
        hybrid = quantize_model(model.graph, calib)
        dev = DeviceModel.pixel1()
        assert (
            graph_latency(dev, hybrid).total_s
            < graph_latency(dev, model.graph).total_s
        )
