"""Tests for the training substrate: STE, optimizers, schedules, learning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.training import (
    Adam,
    BatchNormLayer,
    DenseLayer,
    GlobalAvgPoolLayer,
    QuantConv2D,
    QuantDense,
    ReluLayer,
    SGDMomentum,
    Sequential,
    TrainConfig,
    Trainer,
    clip_latent_weights,
    constant,
    cosine_decay,
    softmax_cross_entropy,
    ste_sign,
    ste_sign_grad,
    synthetic_classification,
    synthetic_images,
    warmup_cosine,
)
from repro.training.layers import Param


class TestSTE:
    def test_sign_forward(self):
        x = np.array([-0.5, 0.0, 0.5, -2.0])
        assert np.array_equal(ste_sign(x), [-1.0, 1.0, 1.0, -1.0])

    def test_grad_passes_inside_unit_interval(self):
        x = np.array([-0.5, 0.5, 0.99])
        up = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(ste_sign_grad(x, up), up)

    def test_grad_blocked_outside(self):
        x = np.array([-1.5, 1.5])
        up = np.array([1.0, 1.0])
        assert np.array_equal(ste_sign_grad(x, up), [0.0, 0.0])

    def test_grad_boundary_inclusive(self):
        assert ste_sign_grad(np.array([1.0]), np.array([5.0]))[0] == 5.0

    def test_clip(self):
        w = np.array([-2.0, 0.5, 3.0])
        assert np.array_equal(clip_latent_weights(w), [-1.0, 0.5, 1.0])

    def test_clip_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            clip_latent_weights(np.zeros(2), limit=0)


class TestSchedules:
    def test_constant(self):
        s = constant(0.1)
        assert s(0) == s(100) == 0.1

    def test_constant_rejects_non_positive(self):
        with pytest.raises(ValueError):
            constant(0.0)

    def test_cosine_endpoints(self):
        s = cosine_decay(1.0, 100)
        assert s(0) == pytest.approx(1.0)
        assert s(50) == pytest.approx(0.5)
        assert s(100) == pytest.approx(0.0, abs=1e-9)

    def test_cosine_monotone_decreasing(self):
        s = cosine_decay(1.0, 50)
        values = [s(i) for i in range(51)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_warmup_ramps_linearly(self):
        s = warmup_cosine(1.0, 10, 110)
        assert s(0) == pytest.approx(0.1)
        assert s(4) == pytest.approx(0.5)
        assert s(9) == pytest.approx(1.0)

    def test_warmup_then_decays_to_zero(self):
        s = warmup_cosine(1.0, 10, 110)
        assert s(110) == pytest.approx(0.0, abs=1e-9)

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            warmup_cosine(1.0, 10, 10)


class TestOptimizers:
    def _quadratic_param(self):
        # minimize f(w) = 0.5 * w^2 -> gradient w
        return Param(np.array([5.0], np.float64), group="full_precision")

    def test_sgd_momentum_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = SGDMomentum([p], constant(0.1), momentum=0.9)
        for _ in range(200):
            p.grad = p.value.copy()
            opt.step()
        assert abs(p.value[0]) < 1e-3

    def test_adam_converges_on_quadratic(self):
        p = self._quadratic_param()
        opt = Adam([p], constant(0.1))
        for _ in range(500):
            p.grad = p.value.copy()
            opt.step()
        assert abs(p.value[0]) < 1e-2

    def test_adam_clips_binary_group(self):
        p = Param(np.array([0.99], np.float64), group="binary")
        opt = Adam([p], constant(1.0))
        p.grad = np.array([-100.0])
        opt.step()
        assert p.value[0] <= 1.0

    def test_adam_leaves_fp_unclipped(self):
        p = Param(np.array([0.99], np.float64), group="full_precision")
        opt = Adam([p], constant(1.0))
        p.grad = np.array([-100.0])
        opt.step()
        assert p.value[0] > 1.0

    def test_none_grad_skipped(self):
        p = Param(np.array([1.0]), group="full_precision")
        opt = SGDMomentum([p], constant(0.1))
        opt.step()  # grad is None: no update, no crash
        assert p.value[0] == 1.0


class TestGradients:
    def test_dense_layer_numeric_gradient(self, rng):
        layer = DenseLayer(4, 3, rng=rng)
        x = rng.standard_normal((2, 4)).astype(np.float32)
        labels = np.array([0, 2])

        def loss_fn():
            return softmax_cross_entropy(layer.forward(x), labels)[0]

        base_loss, dlogits = softmax_cross_entropy(layer.forward(x), labels)
        layer.backward(dlogits)
        analytic = layer.w.grad.copy()
        eps = 1e-4
        for idx in [(0, 0), (3, 2), (1, 1)]:
            layer.w.value[idx] += eps
            plus = loss_fn()
            layer.w.value[idx] -= 2 * eps
            minus = loss_fn()
            layer.w.value[idx] += eps
            numeric = (plus - minus) / (2 * eps)
            assert abs(numeric - analytic[idx]) < 1e-2

    def test_batchnorm_gradient_shapes(self, rng):
        layer = BatchNormLayer(5)
        x = rng.standard_normal((8, 5)).astype(np.float32)
        out = layer.forward(x)
        dx = layer.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert layer.gamma.grad.shape == (5,)

    def test_batchnorm_dx_sums_to_zero(self, rng):
        # d/dx of a normalized batch: gradient component along the mean is
        # removed, so the per-channel gradient sum is ~0.
        layer = BatchNormLayer(3)
        x = rng.standard_normal((16, 3)).astype(np.float32)
        layer.forward(x)
        dx = layer.backward(rng.standard_normal((16, 3)).astype(np.float32))
        np.testing.assert_allclose(dx.sum(axis=0), 0.0, atol=1e-3)

    def test_quant_conv_forward_matches_core_reference(self, rng):
        from repro.core.bconv2d import BConv2DParams, bconv2d_reference
        from repro.core.types import Padding

        layer = QuantConv2D(6, 4, kernel=3, rng=rng)
        x = rng.standard_normal((2, 5, 5, 6)).astype(np.float32)
        out = layer.forward(x)
        expected = bconv2d_reference(
            x, layer.w.value, BConv2DParams(3, 3, 6, 4, padding=Padding.SAME_ONE)
        )
        assert np.array_equal(out, expected)


class TestData:
    def test_shapes(self):
        x, y = synthetic_classification(100, 8, 5, seed=0)
        assert x.shape == (100, 8) and y.shape == (100,)
        assert y.max() < 5

    def test_images(self):
        x, y = synthetic_images(10, 6, 3, 4, seed=0)
        assert x.shape == (10, 6, 6, 3)

    def test_deterministic(self):
        a = synthetic_classification(10, 4, 2, seed=7)
        b = synthetic_classification(10, 4, 2, seed=7)
        assert np.array_equal(a[0], b[0])

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            synthetic_classification(0, 4, 2)


class TestEndToEndLearning:
    def test_quant_dense_mlp_learns(self):
        x, y = synthetic_classification(256, 16, 4, noise=0.4, seed=3)
        rng = np.random.default_rng(0)
        model = Sequential([
            QuantDense(16, 32, binarize_input=False, rng=rng),
            BatchNormLayer(32),
            QuantDense(32, 32, rng=rng),
            BatchNormLayer(32),
            DenseLayer(32, 4, rng=rng),
        ])
        cfg = TrainConfig(epochs=10, batch_size=32)
        steps = cfg.epochs * (len(x) // cfg.batch_size)
        hist = Trainer(model, cfg, steps).fit(x, y)
        assert hist.loss[-1] < hist.loss[0]
        assert hist.accuracy[-1] > 0.6

    def test_quant_conv_net_learns_quicknet_order(self):
        """conv -> ReLU -> BN (the paper's QuickNet layer order) trains."""
        x, y = synthetic_images(192, 8, 4, 4, noise=0.6, seed=1)
        rng = np.random.default_rng(0)
        model = Sequential([
            QuantConv2D(4, 16, kernel=3, binarize_input=False, rng=rng),
            ReluLayer(), BatchNormLayer(16),
            QuantConv2D(16, 16, kernel=3, rng=rng),
            ReluLayer(), BatchNormLayer(16),
            GlobalAvgPoolLayer(),
            DenseLayer(16, 4, rng=rng),
        ])
        cfg = TrainConfig(epochs=8, batch_size=32)
        steps = cfg.epochs * (len(x) // cfg.batch_size)
        hist = Trainer(model, cfg, steps).fit(x, y)
        assert hist.loss[-1] < hist.loss[0] * 0.8
        assert hist.accuracy[-1] > 0.5

    def test_trained_binary_conv_deploys_through_converter(self):
        """Train -> export to a graph -> convert -> identical predictions.

        The end-to-end pipeline of paper Figure 1, in miniature.
        """
        x, y = synthetic_images(128, 8, 4, 3, noise=0.5, seed=2)
        rng = np.random.default_rng(0)
        conv1 = QuantConv2D(4, 8, kernel=3, binarize_input=False, rng=rng)
        relu1 = ReluLayer()
        bn1 = BatchNormLayer(8)
        conv2 = QuantConv2D(8, 8, kernel=3, rng=rng)
        relu2 = ReluLayer()
        bn2 = BatchNormLayer(8)
        head = DenseLayer(8, 3, rng=rng)
        model = Sequential([conv1, relu1, bn1, conv2, relu2, bn2,
                            GlobalAvgPoolLayer(), head])
        cfg = TrainConfig(epochs=4, batch_size=32)
        steps = cfg.epochs * (len(x) // cfg.batch_size)
        Trainer(model, cfg, steps).fit(x, y)

        # Export the trained weights into an inference training-graph.
        from repro.converter import convert
        from repro.core.types import Padding
        from repro.graph.builder import GraphBuilder
        from repro.graph.executor import Executor
        from repro.kernels.batchnorm import BatchNormParams

        def bn_params(bn: BatchNormLayer) -> BatchNormParams:
            return BatchNormParams(
                gamma=bn.gamma.value.copy(), beta=bn.beta.value.copy(),
                mean=bn.running_mean.copy(), variance=bn.running_var.copy(),
                epsilon=bn.eps,
            )

        b = GraphBuilder((1, 8, 8, 4))
        h = b.conv2d(
            b.input, ste_sign(conv1.w.value), padding=Padding.SAME_ONE,
            binary_weights=True,
        )
        h = b.relu(h)
        h = b.batch_norm(h, bn_params(bn1))
        h2 = b.binarize(h)
        h2 = b.conv2d(
            h2, ste_sign(conv2.w.value), padding=Padding.SAME_ONE,
            binary_weights=True,
        )
        h2 = b.relu(h2)
        h2 = b.batch_norm(h2, bn_params(bn2))
        g = b.global_avgpool(h2)
        out = b.dense(g, head.w.value, head.b.value)
        graph = b.finish(out)
        converted = convert(graph)

        sample = x[:1]
        eager = model.forward(sample, training=False)
        deployed = Executor(converted.graph).run(sample)
        np.testing.assert_allclose(deployed, eager, rtol=1e-3, atol=1e-3)
