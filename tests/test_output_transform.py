"""Tests for the fused output transformation and threshold precomputation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitpack import pack_bits
from repro.core.output_transform import (
    OutputThresholds,
    accumulators_to_bitpacked,
    accumulators_to_float,
    compute_output_thresholds,
)
from repro.core.types import Activation


class TestAccumulatorsToFloat:
    def test_identity_transform(self):
        acc = np.array([[3, -5]], np.int32)
        out = accumulators_to_float(acc, 2)
        assert np.array_equal(out, [[3.0, -5.0]])
        assert out.dtype == np.float32

    def test_scale_before_activation(self):
        acc = np.array([[2, 2]], np.int32)
        out = accumulators_to_float(
            acc, 2, multiplier=np.array([2.0, -3.0]), bias=np.array([1.0, 1.0]),
            activation=Activation.RELU, scale_before_activation=True,
        )
        # relu(2*2+1)=5 ; relu(-3*2+1)=0
        assert np.array_equal(out, [[5.0, 0.0]])

    def test_activation_before_scale(self):
        acc = np.array([[2, -2]], np.int32)
        out = accumulators_to_float(
            acc, 2, multiplier=np.array([2.0, 2.0]), bias=np.array([1.0, 1.0]),
            activation=Activation.RELU, scale_before_activation=False,
        )
        # 2*relu(2)+1=5 ; 2*relu(-2)+1=1
        assert np.array_equal(out, [[5.0, 1.0]])

    def test_relu6(self):
        acc = np.array([[10, -10, 3]], np.int32)
        out = accumulators_to_float(acc, 3, activation=Activation.RELU6)
        assert np.array_equal(out, [[6.0, 0.0, 3.0]])

    def test_scalar_parameters_broadcast(self):
        acc = np.array([[1, 2, 3]], np.int32)
        out = accumulators_to_float(acc, 3, multiplier=2.0, bias=-1.0)
        assert np.array_equal(out, [[1.0, 3.0, 5.0]])

    def test_rejects_channel_mismatch(self):
        with pytest.raises(ValueError):
            accumulators_to_float(np.zeros((1, 3), np.int32), 4)

    def test_rejects_bad_vector_length(self):
        with pytest.raises(ValueError):
            accumulators_to_float(
                np.zeros((1, 3), np.int32), 3, multiplier=np.ones(2)
            )


def _all_accumulator_values(depth: int) -> np.ndarray:
    return (depth - 2 * np.arange(depth + 1)).astype(np.int32)


class TestThresholds:
    @given(
        depth=st.integers(1, 60),
        seed=st.integers(0, 2**32 - 1),
        activation=st.sampled_from(list(Activation)),
        order=st.booleans(),
    )
    def test_threshold_equals_sign_of_float_transform(
        self, depth, seed, activation, order
    ):
        """The converter's central invariant (paper Section 3.1): comparing
        raw accumulators against precomputed thresholds must give exactly
        the bits that quantizing the float output would give."""
        rng = np.random.default_rng(seed)
        channels = 8
        mult = rng.uniform(-2, 2, channels).astype(np.float32)
        bias = rng.uniform(-depth, depth, channels).astype(np.float32)
        thresholds = compute_output_thresholds(
            depth, channels, mult, bias, activation, order
        )
        acc = np.stack([_all_accumulator_values(depth)] * channels, axis=-1)
        float_out = accumulators_to_float(acc, channels, mult, bias, activation, order)
        expected_bits = pack_bits(np.where(float_out < 0, -1.0, 1.0))
        got = accumulators_to_bitpacked(acc, thresholds)
        assert np.array_equal(got.bits, expected_bits.bits)

    def test_identity_threshold_is_zero_ish(self):
        t = compute_output_thresholds(10, 1)
        # bit = acc < T must equal acc < 0: the largest negative acc is -2
        # (even depth), so any T in (-2, 0] works; check behaviour not value.
        acc = _all_accumulator_values(10)[:, None]
        got = accumulators_to_bitpacked(acc, t)
        from repro.core.bitpack import unpack_bits

        assert np.array_equal(unpack_bits(got).ravel(), np.where(acc.ravel() < 0, -1, 1))

    def test_never_negative_channel(self):
        # multiplier 0, bias +1: output always >= 0 -> all bits zero.
        t = compute_output_thresholds(6, 1, multiplier=0.0, bias=1.0)
        acc = _all_accumulator_values(6)[:, None]
        packed = accumulators_to_bitpacked(acc, t)
        assert np.all(packed.bits == 0)

    def test_always_negative_channel(self):
        t = compute_output_thresholds(6, 1, multiplier=0.0, bias=-1.0)
        acc = _all_accumulator_values(6)[:, None]
        packed = accumulators_to_bitpacked(acc, t)
        from repro.core.bitpack import unpack_bits

        assert np.all(unpack_bits(packed) == -1.0)

    def test_negative_multiplier_flips(self):
        t = compute_output_thresholds(4, 1, multiplier=-1.0)
        assert bool(t.flip[0])
        acc = _all_accumulator_values(4)[:, None]
        from repro.core.bitpack import unpack_bits

        got = unpack_bits(accumulators_to_bitpacked(acc, t)).ravel()
        assert np.array_equal(got, np.where(-acc.ravel() < 0, -1, 1))

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            compute_output_thresholds(0, 1)

    def test_rejects_channel_mismatch(self):
        t = compute_output_thresholds(4, 2)
        with pytest.raises(ValueError):
            accumulators_to_bitpacked(np.zeros((1, 3), np.int32), t)

    def test_channels_property(self):
        t = compute_output_thresholds(4, 5)
        assert t.channels == 5
        assert isinstance(t, OutputThresholds)
