"""Tests for pooling, batch norm, dense, and elementwise kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import Activation, Padding
from repro.kernels.arithmetic import add, concat, mul, pad2d, relu, relu6, softmax
from repro.kernels.batchnorm import (
    BatchNormParams,
    batch_norm,
    fold_into_conv,
    fold_to_multiplier_bias,
)
from repro.kernels.conv2d import conv2d_float
from repro.kernels.dense import dense_float, dense_int8
from repro.kernels.pool import avgpool2d, global_avgpool, maxpool2d
from repro.kernels.quantization import QuantParams, quantize, quantize_weights_per_channel


class TestPooling:
    def test_maxpool_brute_force(self, rng):
        x = rng.standard_normal((1, 4, 4, 2)).astype(np.float32)
        out = maxpool2d(x, 2, 2)
        for i in range(2):
            for j in range(2):
                expected = x[0, 2 * i : 2 * i + 2, 2 * j : 2 * j + 2].max(axis=(0, 1))
                assert np.array_equal(out[0, i, j], expected)

    def test_maxpool_same_padding_ignores_pad(self):
        x = np.full((1, 3, 3, 1), -7.0, np.float32)
        out = maxpool2d(x, 2, 2, stride=2, padding=Padding.SAME_ZERO)
        assert np.all(out == -7.0)  # -inf padding never wins

    def test_avgpool_brute_force(self, rng):
        x = rng.standard_normal((1, 4, 4, 3)).astype(np.float32)
        out = avgpool2d(x, 2, 2)
        expected = x.reshape(1, 2, 2, 2, 2, 3).mean(axis=(2, 4))
        np.testing.assert_allclose(out, expected.astype(np.float32), rtol=1e-5)

    def test_avgpool_same_counts_valid_only(self):
        # TF semantics: the average at the border divides by the number of
        # valid elements, not the window size.
        x = np.ones((1, 3, 3, 1), np.float32)
        out = avgpool2d(x, 2, 2, stride=2, padding=Padding.SAME_ZERO)
        np.testing.assert_allclose(out, 1.0)

    def test_global_avgpool(self, rng):
        x = rng.standard_normal((2, 5, 5, 3)).astype(np.float32)
        np.testing.assert_allclose(
            global_avgpool(x), x.mean(axis=(1, 2)), rtol=1e-6
        )

    def test_pool_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            maxpool2d(rng.standard_normal((4, 4, 2)), 2, 2)
        with pytest.raises(ValueError):
            avgpool2d(rng.standard_normal((4, 4, 2)), 2, 2)
        with pytest.raises(ValueError):
            global_avgpool(rng.standard_normal((4, 4)))


class TestBatchNorm:
    def _bn(self, rng, c):
        return BatchNormParams(
            gamma=rng.uniform(0.5, 1.5, c).astype(np.float32),
            beta=rng.standard_normal(c).astype(np.float32),
            mean=rng.standard_normal(c).astype(np.float32),
            variance=rng.uniform(0.1, 2.0, c).astype(np.float32),
        )

    def test_matches_definition(self, rng):
        bn = self._bn(rng, 4)
        x = rng.standard_normal((2, 3, 3, 4)).astype(np.float32)
        expected = bn.gamma * (x - bn.mean) / np.sqrt(bn.variance + bn.epsilon) + bn.beta
        np.testing.assert_allclose(batch_norm(x, bn), expected, rtol=1e-4, atol=1e-5)

    def test_identity_params(self, rng):
        x = rng.standard_normal((1, 2, 2, 3)).astype(np.float32)
        out = batch_norm(x, BatchNormParams.identity(3))
        np.testing.assert_allclose(out, x, rtol=1e-3, atol=1e-4)

    def test_fold_to_multiplier_bias(self, rng):
        bn = self._bn(rng, 5)
        x = rng.standard_normal((3, 5)).astype(np.float32)
        m, b = fold_to_multiplier_bias(bn)
        np.testing.assert_allclose(x * m + b, batch_norm(x, bn), rtol=1e-5, atol=1e-6)

    def test_fold_into_conv_equivalence(self, rng):
        bn = self._bn(rng, 4)
        x = rng.standard_normal((1, 6, 6, 3)).astype(np.float32)
        w = rng.standard_normal((3, 3, 3, 4)).astype(np.float32)
        bias = rng.standard_normal(4).astype(np.float32)
        expected = batch_norm(conv2d_float(x, w, bias), bn)
        fw, fb = fold_into_conv(w, bias, bn)
        np.testing.assert_allclose(
            conv2d_float(x, fw, fb), expected, rtol=1e-3, atol=1e-4
        )

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            BatchNormParams(
                gamma=np.ones(3), beta=np.ones(4), mean=np.zeros(3), variance=np.ones(3)
            )

    def test_rejects_negative_variance(self):
        with pytest.raises(ValueError):
            BatchNormParams(
                gamma=np.ones(2), beta=np.zeros(2), mean=np.zeros(2),
                variance=np.array([1.0, -0.1]),
            )


class TestDense:
    def test_matmul(self, rng):
        x = rng.standard_normal((4, 6)).astype(np.float32)
        w = rng.standard_normal((6, 3)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        np.testing.assert_allclose(dense_float(x, w, b), x @ w + b, rtol=1e-5)

    def test_activation(self, rng):
        x = rng.standard_normal((4, 6)).astype(np.float32)
        w = rng.standard_normal((6, 3)).astype(np.float32)
        out = dense_float(x, w, activation=Activation.RELU)
        assert np.all(out >= 0)

    def test_rejects_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            dense_float(rng.standard_normal((4, 5)), rng.standard_normal((6, 3)))

    def test_int8_tracks_float(self, rng):
        x = rng.standard_normal((8, 32)).astype(np.float32)
        w = rng.standard_normal((32, 10)).astype(np.float32)
        ref = dense_float(x, w)
        in_p = QuantParams.from_range(float(x.min()), float(x.max()))
        out_p = QuantParams.from_range(float(ref.min()), float(ref.max()))
        wq, scales = quantize_weights_per_channel(w)
        from repro.kernels.quantization import dequantize

        got = dequantize(dense_int8(quantize(x, in_p), wq, in_p, scales, out_p), out_p)
        rel = np.abs(got - ref).max() / np.abs(ref).max()
        assert rel < 0.05

    def test_int8_rejects_float(self, rng):
        with pytest.raises(TypeError):
            dense_int8(
                rng.standard_normal((2, 4)).astype(np.float32),
                np.zeros((4, 2), np.int8),
                QuantParams(0.1), np.ones(2), QuantParams(0.1),
            )


class TestArithmetic:
    def test_add_mul(self, rng):
        a = rng.standard_normal((2, 3)).astype(np.float32)
        b = rng.standard_normal((2, 3)).astype(np.float32)
        np.testing.assert_allclose(add(a, b), a + b)
        np.testing.assert_allclose(mul(a, b), a * b)

    def test_relu_family(self):
        x = np.array([-2.0, 0.0, 3.0, 10.0], np.float32)
        assert np.array_equal(relu(x), [0, 0, 3, 10])
        assert np.array_equal(relu6(x), [0, 0, 3, 6])

    def test_softmax_properties(self, rng):
        x = rng.standard_normal((4, 7)).astype(np.float32) * 10
        p = softmax(x)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0, rtol=1e-5)
        assert np.all(p >= 0)

    def test_softmax_stability(self):
        x = np.array([[1000.0, 1000.0]], np.float32)
        p = softmax(x)
        np.testing.assert_allclose(p, [[0.5, 0.5]])

    def test_pad2d(self, rng):
        x = rng.standard_normal((1, 2, 2, 1)).astype(np.float32)
        out = pad2d(x, (1, 1), (0, 2), value=9.0)
        assert out.shape == (1, 4, 4, 1)
        assert out[0, 0, 0, 0] == 9.0

    def test_pad2d_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            pad2d(rng.standard_normal((2, 2)), (1, 1), (1, 1))

    def test_concat(self, rng):
        a = rng.standard_normal((1, 2, 2, 3)).astype(np.float32)
        b = rng.standard_normal((1, 2, 2, 5)).astype(np.float32)
        assert concat([a, b]).shape == (1, 2, 2, 8)

    def test_concat_rejects_empty(self):
        with pytest.raises(ValueError):
            concat([])
