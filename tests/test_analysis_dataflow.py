"""Seeded-violation tests for the graph dataflow analyses (G-rules).

Every rule in :mod:`repro.analysis.dataflow` gets two kinds of coverage:

- **clean path** — the whole model zoo (training and converted graphs)
  analyzes with zero ERROR findings, so the rules never reject the
  graphs the converter actually produces;
- **seeded violations** — a legal converted graph is mutated the way a
  buggy pass would mutate it (dropped correction, stale thresholds,
  wrong word count, broken SSA, ...) and the analysis must report the
  documented rule id.

The enforcement points are exercised too: ``PassManager.run`` must
reject a pass that leaves the graph illegal — *even when the pass
reports no change* — naming the pass and the rule; ``Executor``,
``compile_plan`` and ``save_model`` must refuse illegal graphs; and the
``verified`` stamp must propagate from ``CompiledPlan`` to
``EngineStats``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import analyze_graph, check_graph
from repro.analysis.diagnostics import Severity, errors_of
from repro.converter import convert
from repro.core.bconv2d import pack_filters
from repro.core.types import Padding
from repro.graph.builder import GraphBuilder
from repro.graph.executor import Executor
from repro.graph.ir import Graph, GraphError, TensorSpec
from repro.graph.passes.pass_manager import PassManager
from repro.graph.serialization import load_model, save_model
from repro.kernels.batchnorm import BatchNormParams
from repro.runtime import Engine
from repro.runtime.plan import compile_plan
from repro.zoo import MODEL_REGISTRY, build_model

# ----------------------------------------------------------------- helpers


def _rules(diags):
    return {d.rule for d in diags}


def _binary_net(padding):
    """A fresh converted binarized chain (safe to mutate per test)."""
    rng = np.random.default_rng(0)
    b = GraphBuilder((1, 8, 8, 8))
    w1 = rng.standard_normal((3, 3, 8, 16)).astype(np.float32)
    w2 = rng.standard_normal((3, 3, 16, 16)).astype(np.float32)
    x = b.binarize(b.input)
    x = b.conv2d(x, w1, binary_weights=True, padding=padding)
    x = b.batch_norm(x, BatchNormParams.identity(16))
    x = b.binarize(x)
    x = b.conv2d(x, w2, binary_weights=True, padding=padding)
    x = b.global_avgpool(x)
    x = b.dense(x, rng.standard_normal((16, 4)).astype(np.float32))
    return convert(b.finish(x), in_place=True)


def _bconvs(graph):
    return [n for n in graph.nodes if n.op == "lce_bconv2d"]


def _bitpacked_bconv(graph):
    """The chain-fused conv: bitpacked output, thresholds precomputed."""
    (node,) = [n for n in _bconvs(graph) if "threshold" in n.params]
    return node


def _float_bconv(graph):
    (node,) = [n for n in _bconvs(graph) if "threshold" not in n.params]
    return node


# ----------------------------------------------------- clean path: the zoo


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_zoo_model_analyzes_clean_before_and_after_convert(name):
    graph = build_model(name, input_size=64)
    assert not errors_of(analyze_graph(graph)), name
    converted = convert(graph, in_place=True).graph
    diags = analyze_graph(converted)
    assert not errors_of(diags), [d.format() for d in diags]
    # The zoo is word-aligned throughout: no grouped-repack warnings either.
    assert not diags, [d.format() for d in diags]


def test_grouped_unaligned_bconv_is_legal_but_warns():
    """cin_g % 64 != 0 uses the repack fallback: a G003 WARNING, no error."""
    rng = np.random.default_rng(1)
    g = Graph("grouped")
    x = g.add_input("x", TensorSpec((1, 6, 6, 20)))
    q = g.add_node("lce_quantize", [x], [TensorSpec((1, 6, 6, 20), "bitpacked")])
    w = rng.standard_normal((3, 3, 10, 6)).astype(np.float32)
    c = g.add_node(
        "lce_bconv2d",
        [q.outputs[0]],
        [TensorSpec((1, 6, 6, 6), "float32")],
        attrs={
            "kernel_h": 3, "kernel_w": 3, "in_channels": 20,
            "out_channels": 6, "groups": 2,
        },
        params={"filter_bits": pack_filters(w).bits},
    )
    g.outputs = [c.outputs[0]]
    diags = analyze_graph(g)
    assert not errors_of(diags)
    assert [d.rule for d in diags] == ["G003"]
    assert diags[0].severity is Severity.WARNING
    g.validate()  # warnings never block execution
    Executor(g)


# ------------------------------------------------- G001: def-before-use/SSA


def test_g001_dangling_tensor_spec():
    graph = _binary_net(Padding.SAME_ONE).graph
    graph.tensors["orphan"] = TensorSpec((1, 4))
    diags = errors_of(analyze_graph(graph))
    assert _rules(diags) == {"G001"}
    assert any("no producer" in d.message for d in diags)


def test_g001_non_topological_order():
    graph = _binary_net(Padding.SAME_ONE).graph
    graph.nodes.reverse()
    assert "G001" in _rules(errors_of(analyze_graph(graph)))


def test_g001_unproduced_graph_output():
    graph = _binary_net(Padding.SAME_ONE).graph
    graph.outputs.append("never_made")
    assert "G001" in _rules(errors_of(analyze_graph(graph)))


def test_g001_structural_errors_short_circuit_later_rules():
    graph = _binary_net(Padding.SAME_ZERO).graph
    graph.nodes.reverse()
    del _float_bconv(graph).params["padding_correction"]  # would be G004
    assert _rules(errors_of(analyze_graph(graph))) == {"G001"}


def test_check_graph_raises_with_rule_id_and_location():
    graph = _binary_net(Padding.SAME_ONE).graph
    graph.tensors["orphan"] = TensorSpec((1, 4))
    with pytest.raises(GraphError, match=r"dataflow analysis failed.*\[G001\]"):
        check_graph(graph)
    with pytest.raises(GraphError, match="compile_plan:"):
        check_graph(graph, where="compile_plan")


# --------------------------------------------------- G002: dtype and layout


def test_g002_bitpacked_tensor_feeding_float_domain_op():
    g = Graph("leak")
    x = g.add_input("x", TensorSpec((1, 8, 8, 64)))
    q = g.add_node("lce_quantize", [x], [TensorSpec((1, 8, 8, 64), "bitpacked")])
    r = g.add_node("relu", [q.outputs[0]], [TensorSpec((1, 8, 8, 64), "bitpacked")])
    g.outputs = [r.outputs[0]]
    diags = errors_of(analyze_graph(g))
    assert _rules(diags) == {"G002"}
    assert any("float-domain" in d.message for d in diags)


def test_g002_recorded_spec_diverges_from_reinference():
    graph = _binary_net(Padding.SAME_ONE).graph
    out = graph.outputs[0]
    graph.tensors[out] = TensorSpec((1, 5), graph.tensors[out].dtype)
    diags = errors_of(analyze_graph(graph))
    assert "G002" in _rules(diags)
    assert any("re-inference" in d.message for d in diags)


def test_g002_unregistered_op():
    graph = _binary_net(Padding.SAME_ONE).graph
    graph.add_node("totally_bogus_op", [graph.outputs[0]], [TensorSpec((1, 4))])
    diags = errors_of(analyze_graph(graph))
    assert "G002" in _rules(diags)
    assert any("not registered" in d.message for d in diags)


# ------------------------------------------------------ G003: bitpack words


def test_g003_wrong_filter_bits_word_count():
    graph = _binary_net(Padding.SAME_ONE).graph
    node = _float_bconv(graph)
    node.params["filter_bits"] = np.zeros((16, 5), np.uint64)
    diags = errors_of(analyze_graph(graph))
    assert _rules(diags) == {"G003"}
    assert any("ceil(cin_g/64)" in d.message for d in diags)


def test_g003_missing_filter_bits():
    graph = _binary_net(Padding.SAME_ONE).graph
    del _float_bconv(graph).params["filter_bits"]
    diags = errors_of(analyze_graph(graph))
    assert _rules(diags) == {"G003"}


def test_g003_filter_bits_wrong_dtype():
    graph = _binary_net(Padding.SAME_ONE).graph
    node = _float_bconv(graph)
    node.params["filter_bits"] = node.params["filter_bits"].astype(np.uint32)
    diags = errors_of(analyze_graph(graph))
    assert _rules(diags) == {"G003"}
    assert any("uint64" in d.message for d in diags)


def test_g003_groups_must_divide_channels():
    graph = _binary_net(Padding.SAME_ONE).graph
    _float_bconv(graph).attrs["groups"] = 3  # 16 % 3 != 0
    assert "G003" in _rules(errors_of(analyze_graph(graph)))


# -------------------------------------------------- G004: padding semantics


def test_g004_same_zero_without_correction():
    graph = _binary_net(Padding.SAME_ZERO).graph
    del _float_bconv(graph).params["padding_correction"]
    diags = errors_of(analyze_graph(graph))
    assert _rules(diags) == {"G004"}
    assert any("SAME_ZERO" in d.message for d in diags)


def test_g004_correction_on_one_padded_conv():
    graph = _binary_net(Padding.SAME_ONE).graph
    _float_bconv(graph).params["padding_correction"] = np.zeros(
        (64, 16), np.float32
    )
    diags = errors_of(analyze_graph(graph))
    assert "G004" in _rules(diags)
    assert any("must not carry" in d.message for d in diags)


def test_g004_correction_shape_must_match_geometry():
    graph = _binary_net(Padding.SAME_ZERO).graph
    _float_bconv(graph).params["padding_correction"] = np.zeros(
        (3, 16), np.float32
    )
    diags = errors_of(analyze_graph(graph))
    assert _rules(diags) == {"G004"}
    assert any("(pixels, out_channels)" in d.message for d in diags)


# --------------------------------------------------- G005: fusion legality


def test_g005_bitpacked_output_requires_thresholds():
    graph = _binary_net(Padding.SAME_ONE).graph
    del _bitpacked_bconv(graph).params["threshold"]
    diags = errors_of(analyze_graph(graph))
    assert _rules(diags) == {"G005"}


def test_g005_leftover_multiplier_after_threshold_fold():
    graph = _binary_net(Padding.SAME_ONE).graph
    _bitpacked_bconv(graph).params["multiplier"] = np.ones(16, np.float32)
    diags = errors_of(analyze_graph(graph))
    assert _rules(diags) == {"G005"}
    assert any("inexact" in d.message for d in diags)


def test_g005_threshold_shape_is_per_channel():
    graph = _binary_net(Padding.SAME_ONE).graph
    _bitpacked_bconv(graph).params["threshold"] = np.zeros(17, np.int32)
    diags = errors_of(analyze_graph(graph))
    assert _rules(diags) == {"G005"}


def test_g005_stale_thresholds_on_float_output():
    graph = _binary_net(Padding.SAME_ONE).graph
    node = _float_bconv(graph)
    node.params["threshold"] = np.zeros(16, np.int32)
    node.params["threshold_flip"] = np.zeros(16, bool)
    diags = errors_of(analyze_graph(graph))
    assert _rules(diags) == {"G005"}
    assert any("stale" in d.message for d in diags)


def test_g005_int8_output_requires_scale():
    graph = _binary_net(Padding.SAME_ONE).graph
    _float_bconv(graph).attrs["output_type"] = "int8"
    rules = _rules(errors_of(analyze_graph(graph)))
    assert "G005" in rules  # (G002 fires too: the recorded dtype is stale)


# ------------------------------------------- enforcement: pass manager


def _single_pass_manager(name, fn):
    return PassManager().add(name, fn)


def test_pass_manager_rejects_mutation_without_report():
    """A pass that breaks the graph but returns False is still caught."""
    model = _binary_net(Padding.SAME_ONE)

    def evil_padding_flip(graph):
        # Flip to zero-padding without attaching the accumulator
        # correction — and lie about having changed anything.
        _float_bconv(graph).attrs["padding"] = Padding.SAME_ZERO
        return False

    pm = _single_pass_manager("evil_padding_flip", evil_padding_flip)
    with pytest.raises(GraphError, match=r"pass 'evil_padding_flip'.*\[G004\]"):
        pm.run(model.graph)


def test_pass_manager_rejects_illegal_fusion():
    model = _binary_net(Padding.SAME_ONE)

    def evil_fusion(graph):
        node = _bitpacked_bconv(graph)
        node.params["multiplier"] = np.ones(16, np.float32)
        return True

    pm = _single_pass_manager("evil_fusion", evil_fusion)
    with pytest.raises(GraphError, match=r"pass 'evil_fusion'.*\[G005\]"):
        pm.run(model.graph)


def test_pass_manager_rejects_broken_bitpacked_chain():
    model = _binary_net(Padding.SAME_ONE)

    def evil_chain(graph):
        out = graph.outputs[0]
        graph.tensors[out] = TensorSpec((1, 5), graph.tensors[out].dtype)
        return True

    pm = _single_pass_manager("evil_chain", evil_chain)
    with pytest.raises(GraphError, match=r"pass 'evil_chain'.*\[G002\]"):
        pm.run(model.graph)


def test_pass_manager_accepts_a_well_behaved_pass():
    model = _binary_net(Padding.SAME_ONE)
    ran = []
    pm = _single_pass_manager("noop", lambda g: ran.append(1) and False)
    assert pm.run(model.graph) == {"noop": 0}
    assert ran


# ---------------------------- enforcement: executor / plan / serialization


def _illegal_graph():
    graph = _binary_net(Padding.SAME_ZERO).graph
    del _float_bconv(graph).params["padding_correction"]
    return graph


def test_executor_refuses_illegal_graph():
    with pytest.raises(GraphError, match=r"\[G004\]"):
        Executor(_illegal_graph())


def test_compile_plan_refuses_illegal_graph():
    with pytest.raises(GraphError, match=r"\[G004\]"):
        compile_plan(_illegal_graph())


def test_save_model_refuses_illegal_graph(tmp_path):
    with pytest.raises(GraphError, match=r"\[G004\]"):
        save_model(_illegal_graph(), tmp_path / "bad.lce")


def test_save_load_roundtrip_stays_clean(tmp_path):
    graph = _binary_net(Padding.SAME_ZERO).graph
    save_model(graph, tmp_path / "ok.lce")
    assert not analyze_graph(load_model(tmp_path / "ok.lce"))


# ------------------------------------------------- the `verified` stamp


def test_compiled_plan_records_verification():
    model = _binary_net(Padding.SAME_ZERO)
    assert compile_plan(model.graph).verified is True


def test_engine_stats_report_verified():
    model = _binary_net(Padding.SAME_ZERO)
    x = np.random.default_rng(2).standard_normal((1, 8, 8, 8)).astype(np.float32)
    with Engine(model, num_threads=1, max_batch_size=2) as engine:
        engine.run(x)
        stats = engine.stats()
    assert stats.verified is True
