"""A deterministic virtual clock implementing the serving Clock protocol.

Time only moves when the test calls :meth:`FakeClock.advance`; nothing in
here ever waits on wall-clock progress (the long ``cond.wait`` timeouts
below are hang *backstops* for a buggy test, not part of normal flow).

How the timed-wait handshake stays race-free: the gateway's batcher calls
``clock.wait(cond, remaining)`` while holding ``cond``'s lock, so the
waiter is registered (under the fake clock's own lock) *before* the
thread parks in ``cond.wait``.  When the test later calls ``advance``,
the clock collects the expired registrations and then does
``with waiter_cond: waiter_cond.notify_all()`` — acquiring that lock
blocks until the waiter has actually parked (released it inside
``cond.wait``), so a wakeup can never be lost between registration and
parking.

Tests sequence against gateway threads with :meth:`wait_for_sleepers` /
:meth:`wait_for_timed_waiters` (real-time polls with a short cadence),
then drive virtual time with :meth:`advance`.
"""

from __future__ import annotations

import threading
import time


class _TimedWaiter:
    __slots__ = ("cond", "deadline")

    def __init__(self, cond: threading.Condition, deadline: float) -> None:
        self.cond = cond
        self.deadline = deadline


class FakeClock:
    """Virtual time: ``now`` is a number the test moves with ``advance``."""

    def __init__(self, start: float = 0.0, safety_timeout_s: float = 30.0) -> None:
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._now = float(start)
        self._safety = safety_timeout_s
        self._sleepers = 0
        self._timed_waiters: list[_TimedWaiter] = []
        self._registrations = 0

    # ------------------------------------------------------- Clock protocol
    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        """Block until virtual time reaches ``now + seconds``."""
        if seconds <= 0:
            return
        with self._cv:
            deadline = self._now + seconds
            self._sleepers += 1
            self._cv.notify_all()
            try:
                while self._now < deadline:
                    if not self._cv.wait(self._safety):
                        raise TimeoutError(
                            "FakeClock.sleep: no advance() within the "
                            f"{self._safety}s safety window"
                        )
            finally:
                self._sleepers -= 1
                self._cv.notify_all()

    def wait(self, cond: threading.Condition, timeout: float | None) -> bool:
        """Condition wait whose timeout expires only via :meth:`advance`.

        Called with ``cond``'s lock held.  An untimed wait passes through
        (the waker is a real event, not time); a timed wait registers a
        deadline so ``advance`` can deliver the timeout wake.  Either way
        the underlying real wait uses the safety timeout as a backstop.
        """
        if timeout is None:
            return cond.wait(self._safety)
        with self._cv:
            waiter = _TimedWaiter(cond, self._now + timeout)
            self._timed_waiters.append(waiter)
            self._registrations += 1
            self._cv.notify_all()
        try:
            return cond.wait(self._safety)
        finally:
            with self._cv:
                self._timed_waiters.remove(waiter)
                self._cv.notify_all()

    # ----------------------------------------------------------- test knobs
    def advance(self, seconds: float) -> None:
        """Move virtual time forward and wake everything that expired."""
        if seconds < 0:
            raise ValueError(f"cannot advance backwards ({seconds})")
        with self._cv:
            self._now += seconds
            self._cv.notify_all()  # sleepers re-check their deadlines
            expired = [w.cond for w in self._timed_waiters if w.deadline <= self._now]
        # Notify outside our own lock: acquiring each waiter's condition
        # blocks until that thread is parked in cond.wait, which is what
        # makes the timeout wake race-free (see module docstring).
        for cond in expired:
            with cond:
                cond.notify_all()

    @property
    def sleepers(self) -> int:
        with self._lock:
            return self._sleepers

    @property
    def timed_waiters(self) -> int:
        with self._lock:
            return len(self._timed_waiters)

    @property
    def registrations(self) -> int:
        """Total timed waits ever registered (a progress generation count)."""
        with self._lock:
            return self._registrations

    def wait_for(self, predicate, timeout_s: float = 10.0) -> None:
        """Real-time poll until ``predicate()`` holds (test sequencing).

        The predicate runs with NO clock lock held, so it may freely read
        gateway state that itself takes locks (no lock-order inversion
        against threads inside :meth:`wait`).
        """
        deadline = time.monotonic() + timeout_s
        while not predicate():
            if time.monotonic() >= deadline:
                raise TimeoutError("FakeClock.wait_for: predicate never held")
            time.sleep(0.002)

    def wait_for_sleepers(self, n: int = 1, timeout_s: float = 10.0) -> None:
        """Block until at least ``n`` threads are parked in :meth:`sleep`."""
        self.wait_for(lambda: self.sleepers >= n, timeout_s)

    def wait_for_timed_waiters(self, n: int = 1, timeout_s: float = 10.0) -> None:
        """Block until at least ``n`` timed condition waits are registered."""
        self.wait_for(lambda: self.timed_waiters >= n, timeout_s)

    def wait_for_registrations(self, n: int, timeout_s: float = 10.0) -> None:
        """Block until the lifetime registration count reaches ``n``.

        Distinguishes a *re*-registration (wake, re-check, wait again)
        from a waiter that never woke — the waiter-count alone cannot.
        """
        self.wait_for(lambda: self.registrations >= n, timeout_s)
