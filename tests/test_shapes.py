"""Tests for per-op shape/dtype inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import Padding
from repro.graph.ir import GraphError, TensorSpec
from repro.graph.shapes import infer_output_specs, supported_ops
from repro.kernels.batchnorm import BatchNormParams


def _infer(op, specs, attrs=None, params=None):
    return infer_output_specs(op, specs, attrs or {}, params or {})


class TestElementwise:
    def test_same_shape_ops(self):
        spec = TensorSpec((1, 4, 4, 8))
        for op in ("relu", "relu6", "softmax", "sigmoid", "binarize", "identity"):
            assert _infer(op, [spec]) == [spec]

    def test_add_same_shapes(self):
        spec = TensorSpec((1, 4, 4, 8))
        assert _infer("add", [spec, spec])[0].shape == (1, 4, 4, 8)

    def test_mul_broadcast(self):
        a = TensorSpec((1, 4, 4, 8))
        b = TensorSpec((1, 1, 1, 8))
        assert _infer("mul", [a, b])[0].shape == (1, 4, 4, 8)

    def test_add_incompatible_rejected(self):
        with pytest.raises(GraphError):
            _infer("add", [TensorSpec((1, 4)), TensorSpec((1, 3))])

    def test_add_wrong_arity(self):
        with pytest.raises(GraphError):
            _infer("add", [TensorSpec((1, 4))])

    def test_batch_norm_channel_check(self):
        spec = TensorSpec((1, 4, 4, 8))
        assert _infer("batch_norm", [spec], params={"bn": BatchNormParams.identity(8)})
        with pytest.raises(GraphError):
            _infer("batch_norm", [spec], params={"bn": BatchNormParams.identity(4)})


class TestShapeOps:
    def test_concat(self):
        a = TensorSpec((1, 2, 2, 3))
        b = TensorSpec((1, 2, 2, 5))
        assert _infer("concat", [a, b], {"axis": -1})[0].shape == (1, 2, 2, 8)

    def test_concat_mismatch(self):
        with pytest.raises(GraphError):
            _infer("concat", [TensorSpec((1, 2, 2, 3)), TensorSpec((1, 3, 2, 5))])

    def test_reshape(self):
        assert _infer("reshape", [TensorSpec((1, 4, 4, 2))], {"shape": (1, 32)})[
            0
        ].shape == (1, 32)

    def test_reshape_element_count_check(self):
        with pytest.raises(GraphError):
            _infer("reshape", [TensorSpec((1, 4))], {"shape": (1, 5)})


class TestConvOps:
    def test_conv2d(self):
        spec = TensorSpec((2, 8, 8, 3))
        w = np.zeros((3, 3, 3, 16), np.float32)
        out = _infer(
            "conv2d", [spec], {"stride": 2, "padding": Padding.SAME_ZERO},
            {"weights": w},
        )
        assert out[0].shape == (2, 4, 4, 16)

    def test_conv2d_channel_mismatch(self):
        with pytest.raises(GraphError):
            _infer(
                "conv2d", [TensorSpec((1, 8, 8, 4))], {},
                {"weights": np.zeros((3, 3, 3, 16), np.float32)},
            )

    def test_depthwise(self):
        out = _infer(
            "depthwise_conv2d", [TensorSpec((1, 8, 8, 4))], {"stride": 2},
            {"weights": np.zeros((3, 3, 4), np.float32)},
        )
        assert out[0].shape == (1, 4, 4, 4)

    def test_dense(self):
        out = _infer(
            "dense", [TensorSpec((2, 16))], {}, {"weights": np.zeros((16, 10))}
        )
        assert out[0].shape == (2, 10)

    def test_conv_rejects_non_nhwc(self):
        with pytest.raises(GraphError):
            _infer("conv2d", [TensorSpec((8, 8, 3))], {}, {"weights": np.zeros((3, 3, 3, 4))})


class TestPoolOps:
    def test_maxpool_default_stride(self):
        out = _infer("maxpool2d", [TensorSpec((1, 8, 8, 4))], {"pool_h": 2, "pool_w": 2, "stride": None})
        assert out[0].shape == (1, 4, 4, 4)

    def test_global_avgpool(self):
        out = _infer("global_avgpool", [TensorSpec((2, 7, 7, 512))])
        assert out[0].shape == (2, 512)


class TestLceOps:
    def test_quantize_dtype_flip(self):
        out = _infer("lce_quantize", [TensorSpec((1, 4, 4, 64))])
        assert out[0].dtype == "bitpacked"
        with pytest.raises(GraphError):
            _infer("lce_quantize", [TensorSpec((1, 4, 4, 64), "bitpacked")])

    def test_dequantize(self):
        out = _infer("lce_dequantize", [TensorSpec((1, 4, 4, 64), "bitpacked")])
        assert out[0].dtype == "float32"
        with pytest.raises(GraphError):
            _infer("lce_dequantize", [TensorSpec((1, 4, 4, 64))])

    def _bconv_attrs(self, output_type="float"):
        return {
            "kernel_h": 3, "kernel_w": 3, "in_channels": 64, "out_channels": 128,
            "stride": 1, "padding": Padding.SAME_ONE, "output_type": output_type,
        }

    def test_bconv_float_output(self):
        out = _infer(
            "lce_bconv2d", [TensorSpec((1, 8, 8, 64), "bitpacked")],
            self._bconv_attrs(),
        )
        assert out[0] == TensorSpec((1, 8, 8, 128), "float32")

    def test_bconv_bitpacked_output(self):
        out = _infer(
            "lce_bconv2d", [TensorSpec((1, 8, 8, 64), "bitpacked")],
            self._bconv_attrs("bitpacked"),
        )
        assert out[0].dtype == "bitpacked"

    def test_bconv_rejects_float_input(self):
        with pytest.raises(GraphError):
            _infer("lce_bconv2d", [TensorSpec((1, 8, 8, 64))], self._bconv_attrs())

    def test_bconv_channel_mismatch(self):
        with pytest.raises(GraphError):
            _infer(
                "lce_bconv2d", [TensorSpec((1, 8, 8, 32), "bitpacked")],
                self._bconv_attrs(),
            )

    def test_bmaxpool_requires_bitpacked(self):
        out = _infer(
            "lce_bmaxpool2d", [TensorSpec((1, 8, 8, 64), "bitpacked")],
            {"pool_h": 2, "pool_w": 2, "stride": None},
        )
        assert out[0].dtype == "bitpacked"
        with pytest.raises(GraphError):
            _infer("lce_bmaxpool2d", [TensorSpec((1, 8, 8, 64))], {"pool_h": 2, "pool_w": 2})


class TestRegistry:
    def test_unknown_op_rejected(self):
        with pytest.raises(GraphError):
            _infer("warp_drive", [TensorSpec((1,))])

    def test_supported_ops_nonempty_and_sorted(self):
        ops = supported_ops()
        assert "lce_bconv2d" in ops
        assert list(ops) == sorted(ops)
