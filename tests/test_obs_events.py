"""The structured event log and the flight recorder.

The EventLog mirrors the Tracer's per-thread-ring design, so the same
properties are pinned: bounded memory with counted (never silent) drops,
stable timestamp ordering across threads, and a shared no-op instance
for the disabled path.  The FlightRecorder tests drive every trigger —
explicit, shed storm, deferred (the LockOrderError hook path) — on a
virtual clock and schema-validate the dump artifact.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis import validate_events, validate_flight
from repro.obs import (
    EVENT_KINDS,
    EVENT_SCHEMA,
    EVENT_SCHEMA_VERSION,
    NULL_EVENTS,
    TERMINAL_KINDS,
    EventLog,
    FlightRecorder,
    MetricsRegistry,
    Tracer,
    events_to_records,
    write_events_jsonl,
)
from repro.obs.events import request_kinds


class _Clock:
    """The minimal Clock protocol surface the event log uses."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = start

    def now(self) -> float:
        return self.t


# ------------------------------------------------------------------ EventLog
def test_emit_and_collect_ordered_by_ts():
    clock = _Clock()
    log = EventLog(now=lambda: clock.t)
    clock.t = 2.0
    log.emit("request.accept", request_id="m-1", model="m")
    clock.t = 1.0
    log.emit("request.shed", request_id="m-2", model="m", reason="queue_full")
    clock.t = 3.0
    log.emit("request.complete", request_id="m-1", model="m", replica=0)
    events = log.events()
    assert [e.kind for e in events] == [
        "request.shed",
        "request.accept",
        "request.complete",
    ]
    assert events[0].attrs == {"reason": "queue_full"}
    assert events[2].replica == 0
    assert log.dropped == 0


def test_same_timestamp_keeps_emission_order():
    log = EventLog(now=lambda: 5.0)
    for i in range(10):
        log.emit("engine.batch", i=i)
    assert [e.attrs["i"] for e in log.events()] == list(range(10))


def test_ring_overflow_drops_oldest_and_counts():
    log = EventLog(capacity=4, now=lambda: 0.0)
    for i in range(10):
        log.emit("engine.batch", i=i)
    events = log.events()
    assert len(events) == 4
    assert [e.attrs["i"] for e in events] == [6, 7, 8, 9]  # oldest gone
    assert log.dropped == 6


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_per_thread_rings_merge_across_threads():
    clock = _Clock()
    log = EventLog(now=lambda: clock.t)

    def worker(base):
        for i in range(5):
            log.emit("engine.batch", tid=base, i=i)

    threads = [
        threading.Thread(target=worker, args=(t,), daemon=True)
        for t in range(3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10)
    assert len(log.events()) == 15
    assert log.dropped == 0


def test_use_clock_rebinds_timebase():
    log = EventLog()
    clock = _Clock(start=42.0)
    log.use_clock(clock)
    log.emit("gateway.dump")
    assert log.events()[0].ts == 42.0


def test_clear_resets_events_and_drops():
    log = EventLog(capacity=2, now=lambda: 0.0)
    for i in range(5):
        log.emit("engine.batch", i=i)
    assert log.dropped == 3
    log.clear()
    assert log.events() == []
    assert log.dropped == 0


def test_null_events_is_inert():
    assert NULL_EVENTS.enabled is False
    NULL_EVENTS.emit("request.accept", request_id="x")
    NULL_EVENTS.use_clock(_Clock())
    assert NULL_EVENTS.events() == []
    assert NULL_EVENTS.dropped == 0


def test_terminal_kinds_subset_of_vocabulary():
    assert TERMINAL_KINDS < EVENT_KINDS


# ------------------------------------------------------------------- export
def test_jsonl_export_round_trips_and_validates(tmp_path):
    clock = _Clock()
    log = EventLog(now=lambda: clock.t)
    log.emit("request.accept", request_id="m-1", model="m", factor=2)
    clock.t = 1.0
    log.emit("request.complete", request_id="m-1", model="m", replica=1,
             latency_ms=3.25)
    path = tmp_path / "events.jsonl"
    records = write_events_jsonl(log, path)
    lines = path.read_text().splitlines()
    assert len(lines) == 3
    header = json.loads(lines[0])
    assert header == {
        "schema": EVENT_SCHEMA,
        "version": EVENT_SCHEMA_VERSION,
        "count": 2,
        "dropped": 0,
    }
    assert [json.loads(line) for line in lines] == records
    assert validate_events(records) == []


def test_truncated_stream_skips_lifecycle_pairing():
    log = EventLog(capacity=2, now=lambda: 0.0)
    log.emit("request.accept", request_id="m-1", model="m")
    log.emit("request.complete", request_id="m-1", model="m")
    log.emit("request.complete", request_id="m-2", model="m")  # overwrites
    records = events_to_records(log)
    assert records[0]["dropped"] == 1
    # m-2's accept was overwritten, not never-emitted: on a truncated
    # stream pairing is skipped, so this is legal (and the truncation is
    # visible in the header, never silent).
    assert validate_events(records) == []


def test_validator_flags_lifecycle_violations():
    log = EventLog(now=lambda: 0.0)
    log.emit("request.accept", request_id="a", model="m")  # no terminal
    log.emit("request.complete", request_id="b", model="m")  # no accept
    log.emit("request.accept", request_id="c", model="m")
    log.emit("request.complete", request_id="c", model="m")
    log.emit("request.failed", request_id="c", model="m")  # second terminal
    problems = validate_events(events_to_records(log))
    assert any("a" in p and "terminal" in p for p in problems)
    assert any("'b'" in p for p in problems)
    assert any("'c'" in p for p in problems)


def test_validator_flags_unknown_kind_and_bad_header():
    log = EventLog(now=lambda: 0.0)
    log.emit("request.accept", request_id="a", model="m")
    records = events_to_records(log)
    records[1]["kind"] = "request.bogus"
    assert any("kind" in p for p in validate_events(records))
    assert validate_events([]) != []
    bad = events_to_records(EventLog(now=lambda: 0.0))
    bad[0]["version"] = 999
    assert any("version" in p for p in validate_events(bad))


def test_request_kinds_indexes_lifecycle_only():
    records = [
        {"kind": "request.accept", "request_id": "a"},
        {"kind": "batch.flush", "request_id": None},
        {"kind": "engine.batch", "request_id": None},
        {"kind": "request.complete", "request_id": "a"},
        {"kind": "request.shed", "request_id": "b"},
    ]
    assert request_kinds(records) == {
        "a": ["request.accept", "request.complete"],
        "b": ["request.shed"],
    }


# ----------------------------------------------------------- FlightRecorder
def _recorder(tmp_path, clock, **kwargs):
    recorder = FlightRecorder(tmp_path, **kwargs)
    log = EventLog(now=lambda: clock.t)
    registry = MetricsRegistry()
    registry.counter("gateway.submitted").add(7)
    recorder.bind(
        events=log,
        metrics_fn=registry.snapshot,
        tracer=Tracer(),
        now=lambda: clock.t,
    )
    return recorder, log


def test_trigger_writes_schema_valid_dump(tmp_path):
    clock = _Clock(start=10.0)
    recorder, log = _recorder(tmp_path, clock)
    log.emit("request.accept", request_id="m-1", model="m")
    path = recorder.trigger("manual")
    assert path is not None and path.name == "flight_manual.json"
    obj = json.loads(path.read_text())
    assert validate_flight(obj) == []
    assert obj["reason"] == "manual"
    assert obj["ts"] == 10.0
    assert obj["metrics"]["gateway.submitted"] == 7
    # the dump itself lands in the event stream (the black box records
    # its own activation)
    kinds = [e["kind"] for e in obj["events"]]
    assert kinds == ["request.accept", "gateway.dump"]
    assert recorder.dumps == 1


def test_rate_limit_suppresses_then_recovers(tmp_path):
    clock = _Clock()
    recorder, _log = _recorder(tmp_path, clock, min_interval_s=5.0)
    assert recorder.trigger("first") is not None
    clock.t = 1.0
    assert recorder.trigger("second") is None  # inside the interval
    assert recorder.suppressed == 1
    clock.t = 1.5
    assert recorder.trigger("forced", force=True) is not None  # bypass
    clock.t = 10.0
    assert recorder.trigger("third") is not None
    assert recorder.dumps == 3


def test_shed_storm_fires_at_threshold_within_window(tmp_path):
    clock = _Clock()
    recorder, _log = _recorder(
        tmp_path, clock,
        shed_storm_threshold=3, shed_storm_window_s=1.0, min_interval_s=0.0,
    )
    assert recorder.note_shed() is None
    assert recorder.note_shed() is None
    path = recorder.note_shed()  # third shed inside the window: storm
    assert path is not None and path.name == "flight_shed_storm.json"
    assert validate_flight(json.loads(path.read_text())) == []
    # the window was cleared: the count restarts
    assert recorder.note_shed() is None


def test_slow_sheds_never_cluster_into_a_storm(tmp_path):
    clock = _Clock()
    recorder, _log = _recorder(
        tmp_path, clock, shed_storm_threshold=3, shed_storm_window_s=1.0,
    )
    for _ in range(10):
        assert recorder.note_shed() is None
        clock.t += 2.0  # each shed falls out of the window before the next
    assert recorder.dumps == 0


def test_defer_parks_until_flush_pending(tmp_path):
    clock = _Clock()
    recorder, _log = _recorder(tmp_path, clock)
    recorder.defer("lock_order")
    recorder.defer("second")  # first reason wins; racing errors collapse
    assert recorder.dumps == 0  # nothing written yet
    path = recorder.flush_pending()
    assert path is not None and path.name == "flight_lock_order.json"
    assert recorder.flush_pending() is None  # drained


def test_reason_is_sanitized_for_the_filename(tmp_path):
    clock = _Clock()
    recorder, _log = _recorder(tmp_path, clock)
    path = recorder.trigger("weird reason/../x")
    assert path is not None
    assert path.name == "flight_weird_reason_.._x.json"
    assert path.parent == tmp_path


def test_dump_keeps_only_last_n_events(tmp_path):
    clock = _Clock()
    recorder, log = _recorder(tmp_path, clock, last_n=4)
    for i in range(10):
        log.emit("engine.batch", i=i)
    obj = json.loads(recorder.trigger("manual").read_text())
    assert validate_flight(obj) == []
    assert len(obj["events"]) == 4
    # the newest events survive, including the dump's own event
    assert obj["events"][-1]["kind"] == "gateway.dump"
    assert [e["attrs"].get("i") for e in obj["events"][:-1]] == [7, 8, 9]
