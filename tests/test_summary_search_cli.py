"""Tests for the model summary, architecture search, and CLI tooling."""

from __future__ import annotations

import pytest

from repro.analysis.macs import count_macs
from repro.analysis.search import (
    build_quicknet_config,
    evaluate_candidate,
    search,
)
from repro.analysis.summary import format_summary, model_summary
from repro.cli import main as cli_main
from repro.converter import convert
from repro.hw.device import DeviceModel
from repro.zoo import quicknet


class TestSummary:
    def test_one_row_per_node(self):
        g = quicknet("small", input_size=64)
        rows = model_summary(g)
        assert len(rows) == len(g)

    def test_totals_match_count_macs(self):
        g = quicknet("small", input_size=64)
        rows = model_summary(g)
        total_binary = sum(r.macs.binary for r in rows)
        total_fp = sum(r.macs.full_precision for r in rows)
        macs = count_macs(g)
        assert (total_binary, total_fp) == (macs.binary, macs.full_precision)

    def test_param_bytes_match_graph(self):
        g = quicknet("small", input_size=64)
        assert sum(r.param_bytes for r in model_summary(g)) == g.param_nbytes()

    def test_format_contains_binary_share(self):
        g = convert(quicknet("small", input_size=64), in_place=True).graph
        text = format_summary(g)
        assert "% binary" in text
        assert "lce_bconv2d" in text


class TestSearch:
    SMALL = 32  # keep candidate builds fast

    def test_candidate_builder_matches_table3_config(self):
        g = build_quicknet_config((4, 4, 4, 4), (32, 64, 256, 512), input_size=224)
        reference = quicknet("small", input_size=224)
        assert count_macs(g).binary == count_macs(reference).binary

    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            build_quicknet_config((4, 4), (32, 64, 128))

    def test_evaluate_candidate(self):
        r = evaluate_candidate(
            (2, 2, 2, 2), (32, 64, 128, 256), DeviceModel.pixel1(),
            input_size=self.SMALL,
        )
        assert r.latency_ms > 0
        assert r.binary_macs > 0
        assert "N=(2, 2, 2, 2)" in r.name

    def test_search_respects_budget_and_ranks_by_capacity(self):
        results = search(
            budget_ms=50.0,
            device=DeviceModel.pixel1(),
            layer_choices=((2, 2, 2, 2), (4, 4, 4, 4)),
            filter_choices=((32, 64, 128, 256),),
            input_size=self.SMALL,
        )
        assert results, "both candidates fit a generous budget"
        assert all(r.latency_ms <= 50.0 for r in results)
        assert results[0].binary_macs == max(r.binary_macs for r in results)

    def test_tight_budget_filters(self):
        results = search(
            budget_ms=1e-6,
            device=DeviceModel.pixel1(),
            layer_choices=((2, 2, 2, 2),),
            filter_choices=((32, 64, 128, 256),),
            input_size=self.SMALL,
        )
        assert results == []

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            search(budget_ms=0)


class TestCLI:
    def test_benchmark(self, capsys):
        assert cli_main([
            "benchmark", "--model", "quicknet_small", "--input-size", "64",
            "--device", "pixel1", "--threads", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "quicknet_small on pixel1 (2 threads)" in out
        assert "ms" in out

    def test_profile(self, capsys):
        assert cli_main([
            "profile", "--model", "quicknet_small", "--input-size", "64",
            "--device", "rpi4b",
        ]) == 0
        assert "LceBConv2d (accumulation loop)" in capsys.readouterr().out

    def test_summarize(self, capsys):
        assert cli_main([
            "summarize", "--model", "quicknet_small", "--input-size", "64",
            "--converted",
        ]) == 0
        assert "% binary" in capsys.readouterr().out

    def test_convert(self, tmp_path, capsys):
        out_file = tmp_path / "m.lce"
        assert cli_main([
            "convert", "--model", "quicknet_small", "--input-size", "64",
            "--output", str(out_file),
        ]) == 0
        assert out_file.exists()
        from repro.graph.serialization import load_model

        load_model(out_file).verify()

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["benchmark", "--model", "resnet9000"])
