"""Tests for repro.core.bgemm: all kernels agree with the gold standard."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bgemm import bgemm, bgemm_blocked, bgemm_reference
from repro.core.bitpack import pack_bits


def _random_operands(rng, m, n, depth):
    a = rng.choice([-1.0, 1.0], (m, depth)).astype(np.float32)
    b = rng.choice([-1.0, 1.0], (n, depth)).astype(np.float32)
    return a, b, pack_bits(a).bits, pack_bits(b).bits


class TestAgainstFloatGEMM:
    @given(
        m=st.integers(1, 8),
        n=st.integers(1, 8),
        depth=st.integers(1, 200),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_vectorized_matches_float(self, m, n, depth, seed):
        rng = np.random.default_rng(seed)
        a, b, pa, pb = _random_operands(rng, m, n, depth)
        expected = (a @ b.T).astype(np.int32)
        assert np.array_equal(bgemm(pa, pb, depth), expected)

    def test_reference_matches_float(self, rng):
        a, b, pa, pb = _random_operands(rng, 5, 7, 130)
        expected = (a @ b.T).astype(np.int32)
        assert np.array_equal(bgemm_reference(pa, pb, 130), expected)


class TestBlockedKernel:
    @pytest.mark.parametrize("tile_m,tile_n", [(1, 1), (2, 3), (16, 16), (1000, 1000)])
    def test_tiling_is_bit_identical(self, rng, tile_m, tile_n):
        _, _, pa, pb = _random_operands(rng, 33, 17, 190)
        assert np.array_equal(
            bgemm_blocked(pa, pb, 190, tile_m, tile_n), bgemm(pa, pb, 190)
        )

    def test_rejects_bad_tiles(self, rng):
        _, _, pa, pb = _random_operands(rng, 4, 4, 64)
        with pytest.raises(ValueError):
            bgemm_blocked(pa, pb, 64, tile_m=0)

    @given(seed=st.integers(0, 2**32 - 1))
    def test_blocked_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        m, n, depth = rng.integers(1, 20), rng.integers(1, 20), rng.integers(1, 300)
        _, _, pa, pb = _random_operands(rng, m, n, depth)
        assert np.array_equal(
            bgemm_blocked(pa, pb, depth), bgemm_reference(pa, pb, depth)
        )


class TestTileEdgeCases:
    """Adversarial tile grid: every (tile_m, tile_n, tile_k_words) split —
    degenerate, non-divisor, oversized — must be bit-identical to the
    un-tiled kernel, because the accumulator is exact integer math."""

    @pytest.mark.parametrize("tile_m", [1, 3, 33, 34, 1000])
    @pytest.mark.parametrize("tile_n", [1, 5, 17, 18, 1000])
    def test_adversarial_tile_grid(self, rng, tile_m, tile_n):
        _, _, pa, pb = _random_operands(rng, 33, 17, 190)
        assert np.array_equal(
            bgemm_blocked(pa, pb, 190, tile_m, tile_n), bgemm(pa, pb, 190)
        )

    @pytest.mark.parametrize("tile_k_words", [1, 2, 3, 5, 8, 100])
    def test_k_word_blocking_is_bit_identical(self, rng, tile_k_words):
        # 300 bits -> 5 words: covers kb < words, kb == words (no split),
        # non-divisor kb, and kb far beyond the operand width.
        _, _, pa, pb = _random_operands(rng, 21, 13, 300)
        assert np.array_equal(
            bgemm_blocked(pa, pb, 300, tile_k_words=tile_k_words),
            bgemm(pa, pb, 300),
        )

    def test_all_three_axes_split_at_once(self, rng):
        _, _, pa, pb = _random_operands(rng, 50, 30, 400)
        assert np.array_equal(
            bgemm_blocked(pa, pb, 400, tile_m=7, tile_n=11, tile_k_words=3),
            bgemm(pa, pb, 400),
        )

    def test_tiles_larger_than_matrix(self, rng):
        _, _, pa, pb = _random_operands(rng, 4, 3, 64)
        assert np.array_equal(
            bgemm_blocked(pa, pb, 64, tile_m=4096, tile_n=4096, tile_k_words=64),
            bgemm(pa, pb, 64),
        )

    @pytest.mark.parametrize(
        "kw",
        [{"tile_m": 0}, {"tile_n": 0}, {"tile_m": -4}, {"tile_n": -4},
         {"tile_k_words": 0}, {"tile_k_words": -1}],
    )
    def test_rejects_non_positive_tiles(self, rng, kw):
        _, _, pa, pb = _random_operands(rng, 4, 4, 64)
        with pytest.raises(ValueError):
            bgemm_blocked(pa, pb, 64, **kw)

    @pytest.mark.parametrize(
        "kw",
        [{"tile_m": 2.0}, {"tile_n": "8"}, {"tile_k_words": True}],
    )
    def test_rejects_non_integer_tiles(self, rng, kw):
        _, _, pa, pb = _random_operands(rng, 4, 4, 64)
        with pytest.raises(TypeError):
            bgemm_blocked(pa, pb, 64, **kw)


class TestValidation:
    def test_rejects_non_uint64(self, rng):
        a = np.zeros((2, 1), np.uint32)
        b = np.zeros((2, 1), np.uint64)
        with pytest.raises(TypeError):
            bgemm(a, b, 10)

    def test_rejects_word_mismatch(self):
        with pytest.raises(ValueError):
            bgemm(np.zeros((2, 1), np.uint64), np.zeros((2, 2), np.uint64), 10)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            bgemm(np.zeros((2,), np.uint64), np.zeros((2, 1), np.uint64), 10)

    @pytest.mark.parametrize("depth", [0, -5, 65])
    def test_rejects_out_of_range_depth(self, depth):
        a = np.zeros((2, 1), np.uint64)
        with pytest.raises(ValueError):
            bgemm(a, a, depth)

    def test_depth_exactly_word_capacity_allowed(self):
        a = np.zeros((2, 1), np.uint64)
        out = bgemm(a, a, 64)
        assert np.all(out == 64)


class TestAccumulatorRange:
    def test_extremes(self):
        ones = pack_bits(np.ones((1, 128), np.float32)).bits
        negs = pack_bits(-np.ones((1, 128), np.float32)).bits
        assert bgemm(ones, ones, 128)[0, 0] == 128
        assert bgemm(ones, negs, 128)[0, 0] == -128

    def test_output_dtype_is_int32(self, rng):
        _, _, pa, pb = _random_operands(rng, 2, 2, 64)
        assert bgemm(pa, pb, 64).dtype == np.int32
        assert bgemm_blocked(pa, pb, 64).dtype == np.int32

    def test_parity_matches_depth(self, rng):
        # acc = depth - 2*popcount always has the same parity as depth.
        _, _, pa, pb = _random_operands(rng, 6, 6, 77)
        acc = bgemm(pa, pb, 77)
        assert np.all((acc - 77) % 2 == 0)
