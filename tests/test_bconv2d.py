"""Tests for LceBConv2d: the optimized path against the float emulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bconv2d import (
    BConv2DParams,
    bconv2d,
    bconv2d_reference,
    pack_filters,
    zero_padding_correction,
)
from repro.core.bitpack import pack_bits
from repro.core.output_transform import compute_output_thresholds
from repro.core.quantize_ops import lce_quantize
from repro.core.types import Activation, OutputType, Padding


def _case(rng, h=7, w=7, cin=37, cout=5, k=3, batch=2):
    x = rng.standard_normal((batch, h, w, cin)).astype(np.float32)
    weights = rng.choice([-1.0, 1.0], (k, k, cin, cout)).astype(np.float32)
    return x, weights


class TestAgainstReference:
    @pytest.mark.parametrize(
        "padding", [Padding.SAME_ONE, Padding.SAME_ZERO, Padding.VALID]
    )
    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_padding_and_stride(self, rng, padding, stride):
        x, w = _case(rng)
        p = BConv2DParams(3, 3, 37, 5, stride=stride, padding=padding)
        corr = (
            zero_padding_correction(w, p, 7, 7)
            if padding is Padding.SAME_ZERO
            else None
        )
        got = bconv2d(lce_quantize(x), pack_filters(w), p, padding_correction=corr)
        expected = bconv2d_reference(x, w, p)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_kernel_sizes(self, rng, k):
        x, w = _case(rng, h=9, w=9, k=k)
        p = BConv2DParams(k, k, 37, 5)
        got = bconv2d(lce_quantize(x), pack_filters(w), p)
        assert np.array_equal(got, bconv2d_reference(x, w, p))

    def test_dilation(self, rng):
        x, w = _case(rng, h=11, w=11)
        p = BConv2DParams(3, 3, 37, 5, dilation=2)
        got = bconv2d(lce_quantize(x), pack_filters(w), p)
        assert np.array_equal(got, bconv2d_reference(x, w, p))

    @given(
        cin=st.integers(1, 130),
        cout=st.integers(1, 9),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_arbitrary_channel_counts(self, cin, cout, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, 4, 4, cin)).astype(np.float32)
        w = rng.choice([-1.0, 1.0], (3, 3, cin, cout)).astype(np.float32)
        p = BConv2DParams(3, 3, cin, cout)
        got = bconv2d(lce_quantize(x), pack_filters(w), p)
        assert np.array_equal(got, bconv2d_reference(x, w, p))

    def test_non_square_kernel(self, rng):
        x = rng.standard_normal((1, 8, 8, 33)).astype(np.float32)
        w = rng.choice([-1.0, 1.0], (1, 3, 33, 4)).astype(np.float32)
        p = BConv2DParams(1, 3, 33, 4)
        got = bconv2d(lce_quantize(x), pack_filters(w), p)
        assert np.array_equal(got, bconv2d_reference(x, w, p))

    def test_non_binary_latent_weights_use_signs(self, rng):
        x = rng.standard_normal((1, 5, 5, 16)).astype(np.float32)
        w = rng.standard_normal((3, 3, 16, 3)).astype(np.float32)  # latent floats
        p = BConv2DParams(3, 3, 16, 3)
        got = bconv2d(lce_quantize(x), pack_filters(w), p)
        assert np.array_equal(got, bconv2d_reference(x, w, p))


class TestFusedTransform:
    @pytest.mark.parametrize("order", [True, False])
    @pytest.mark.parametrize("activation", list(Activation))
    def test_multiplier_bias_activation(self, rng, order, activation):
        x, w = _case(rng)
        p = BConv2DParams(3, 3, 37, 5)
        mult = rng.uniform(-1.5, 1.5, 5).astype(np.float32)
        bias = rng.standard_normal(5).astype(np.float32)
        got = bconv2d(
            lce_quantize(x), pack_filters(w), p,
            multiplier=mult, bias=bias, activation=activation,
            scale_before_activation=order,
        )
        expected = bconv2d_reference(
            x, w, p, multiplier=mult, bias=bias, activation=activation,
            scale_before_activation=order,
        )
        assert np.array_equal(got, expected)


class TestBitpackedOutput:
    @pytest.mark.parametrize("padding", [Padding.SAME_ONE, Padding.SAME_ZERO])
    def test_threshold_path_equals_quantized_float_path(self, rng, padding):
        x, w = _case(rng, cout=9)
        p = BConv2DParams(3, 3, 37, 9, padding=padding)
        mult = rng.uniform(-2, 2, 9).astype(np.float32)
        bias = rng.standard_normal(9).astype(np.float32)
        corr = (
            zero_padding_correction(w, p, 7, 7)
            if padding is Padding.SAME_ZERO
            else None
        )
        float_out = bconv2d(
            lce_quantize(x), pack_filters(w), p, multiplier=mult, bias=bias,
            activation=Activation.RELU, scale_before_activation=False,
            padding_correction=corr,
        )
        thresholds = compute_output_thresholds(
            p.depth, 9, mult, bias, Activation.RELU, scale_before_activation=False
        )
        packed = bconv2d(
            lce_quantize(x), pack_filters(w), p,
            output_type=OutputType.BITPACKED, thresholds=thresholds,
            padding_correction=corr,
        )
        assert np.array_equal(packed.bits, pack_bits(float_out).bits)

    def test_requires_thresholds(self, rng):
        x, w = _case(rng)
        p = BConv2DParams(3, 3, 37, 5)
        with pytest.raises(ValueError, match="thresholds"):
            bconv2d(
                lce_quantize(x), pack_filters(w), p,
                output_type=OutputType.BITPACKED,
            )


class TestZeroPaddingCorrection:
    def test_correction_shape(self, rng):
        _, w = _case(rng)
        p = BConv2DParams(3, 3, 37, 5, padding=Padding.SAME_ZERO)
        corr = zero_padding_correction(w, p, 7, 7)
        assert corr.shape == (49, 5)
        assert corr.dtype == np.int32

    def test_interior_correction_is_zero(self, rng):
        _, w = _case(rng)
        p = BConv2DParams(3, 3, 37, 5, padding=Padding.SAME_ZERO)
        corr = zero_padding_correction(w, p, 7, 7).reshape(7, 7, 5)
        assert np.all(corr[1:-1, 1:-1] == 0)

    def test_missing_correction_raises(self, rng):
        x, w = _case(rng)
        p = BConv2DParams(3, 3, 37, 5, padding=Padding.SAME_ZERO)
        with pytest.raises(ValueError, match="padding_correction"):
            bconv2d(lce_quantize(x), pack_filters(w), p)


class TestValidation:
    def test_rejects_channel_mismatch(self, rng):
        x, w = _case(rng)
        p = BConv2DParams(3, 3, 40, 5)
        with pytest.raises(ValueError, match="channels"):
            bconv2d(lce_quantize(x), pack_filters(w), p)

    def test_rejects_filter_count_mismatch(self, rng):
        x, w = _case(rng)
        p = BConv2DParams(3, 3, 37, 7)
        with pytest.raises(ValueError, match="output channels"):
            bconv2d(lce_quantize(x), pack_filters(w), p)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BConv2DParams(0, 3, 4, 4)
        with pytest.raises(ValueError):
            BConv2DParams(3, 3, 4, 4, stride=0)

    def test_pack_filters_rejects_non_hwio(self, rng):
        with pytest.raises(ValueError):
            pack_filters(rng.standard_normal((3, 3, 4)))

    def test_params_properties(self):
        p = BConv2DParams(3, 5, 64, 128)
        assert p.depth == 3 * 5 * 64
        assert p.macs_per_pixel == 3 * 5 * 64 * 128


class TestBatching:
    @pytest.mark.parametrize("batch", [1, 2, 5])
    def test_batched_equals_per_sample(self, rng, batch):
        x, w = _case(rng, batch=batch)
        p = BConv2DParams(3, 3, 37, 5)
        batched = bconv2d(lce_quantize(x), pack_filters(w), p)
        for i in range(batch):
            single = bconv2d(lce_quantize(x[i : i + 1]), pack_filters(w), p)
            assert np.array_equal(batched[i : i + 1], single)


class TestGroups:
    @pytest.mark.parametrize("groups", [2, 4])
    def test_grouped_matches_reference(self, rng, groups):
        cin, cout = 16 * groups, 4 * groups
        x = rng.standard_normal((1, 6, 6, cin)).astype(np.float32)
        w = rng.choice([-1.0, 1.0], (3, 3, cin // groups, cout)).astype(np.float32)
        p = BConv2DParams(3, 3, cin, cout, groups=groups)
        got = bconv2d(lce_quantize(x), pack_filters(w), p)
        assert np.array_equal(got, bconv2d_reference(x, w, p))

    def test_groups_must_divide_channels(self):
        with pytest.raises(ValueError, match="groups"):
            BConv2DParams(3, 3, 10, 8, groups=3)

    def test_depth_reflects_groups(self):
        p = BConv2DParams(3, 3, 64, 64, groups=4)
        assert p.depth == 9 * 16

    def test_unpack_filters_roundtrip(self, rng):
        from repro.core.bconv2d import unpack_filters

        w = rng.choice([-1.0, 1.0], (3, 3, 40, 8)).astype(np.float32)
        assert np.array_equal(unpack_filters(pack_filters(w)), w)

    @pytest.mark.parametrize(
        "cin_g", [64, 20], ids=["word-aligned-slice", "repack-fallback"]
    )
    def test_group_branches_match_independent_convs(self, rng, cin_g):
        """Both grouped branches (word-slice fast path when ``cin_g % 64
        == 0``, per-group repack otherwise) must be bit-identical to
        running each group as an independent ungrouped conv."""
        groups, cout = 2, 10
        cin, cout_g = cin_g * groups, cout // groups
        x = rng.standard_normal((2, 5, 5, cin)).astype(np.float32)
        w = rng.choice([-1.0, 1.0], (3, 3, cin_g, cout)).astype(np.float32)
        p = BConv2DParams(3, 3, cin, cout, groups=groups)
        got = bconv2d(lce_quantize(x), pack_filters(w), p)
        for g in range(groups):
            pg = BConv2DParams(3, 3, cin_g, cout_g)
            xg = x[..., g * cin_g : (g + 1) * cin_g]
            wg = np.ascontiguousarray(w[..., g * cout_g : (g + 1) * cout_g])
            ref = bconv2d(lce_quantize(xg), pack_filters(wg), pg)
            assert np.array_equal(got[..., g * cout_g : (g + 1) * cout_g], ref)

    @pytest.mark.parametrize("cin_g", [64, 20])
    @pytest.mark.parametrize("num_threads", [2, 4])
    def test_grouped_multithreaded(self, rng, cin_g, num_threads):
        groups, cout = 2, 8
        cin = cin_g * groups
        x = rng.standard_normal((2, 9, 9, cin)).astype(np.float32)
        w = rng.choice([-1.0, 1.0], (3, 3, cin_g, cout)).astype(np.float32)
        p = BConv2DParams(3, 3, cin, cout, groups=groups)
        xq, wq = lce_quantize(x), pack_filters(w)
        single = bconv2d(xq, wq, p, num_threads=1)
        assert np.array_equal(bconv2d(xq, wq, p, num_threads=num_threads), single)


class TestInt8Output:
    def test_matches_quantized_float_path(self, rng):
        from repro.kernels.quantization import QuantParams, dequantize

        x, w = _case(rng, cin=32, cout=8)
        p = BConv2DParams(3, 3, 32, 8)
        mult = rng.uniform(0.01, 0.05, 8).astype(np.float32)
        f = bconv2d(lce_quantize(x), pack_filters(w), p, multiplier=mult)
        q = bconv2d(
            lce_quantize(x), pack_filters(w), p, multiplier=mult,
            output_type=OutputType.INT8,
            int8_output_scale=0.1, int8_output_zero_point=3,
        )
        assert q.dtype == np.int8
        err = np.abs(dequantize(q, QuantParams(0.1, 3)) - f).max()
        assert err <= 0.051  # half the output scale + rounding

    def test_requires_scale(self, rng):
        x, w = _case(rng)
        p = BConv2DParams(3, 3, 37, 5)
        with pytest.raises(ValueError, match="int8_output_scale"):
            bconv2d(
                lce_quantize(x), pack_filters(w), p,
                output_type=OutputType.INT8,
            )

    def test_activation_applied_before_quantization(self, rng):
        x, w = _case(rng, cin=32, cout=4)
        p = BConv2DParams(3, 3, 32, 4)
        q = bconv2d(
            lce_quantize(x), pack_filters(w), p,
            activation=Activation.RELU,
            output_type=OutputType.INT8,
            int8_output_scale=0.5, int8_output_zero_point=-10,
        )
        assert np.all(q >= -10)  # relu floor sits at the zero point
