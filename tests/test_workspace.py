"""Tests for repro.core.workspace: the preallocated scratch arena."""

from __future__ import annotations

import threading

import numpy as np

from repro.core.workspace import Workspace, WorkspacePool


class TestWorkspace:
    def test_take_returns_requested_view(self):
        ws = Workspace()
        a = ws.take("a", (3, 4), np.int32)
        assert a.shape == (3, 4) and a.dtype == np.int32
        assert a.flags.c_contiguous

    def test_grow_only(self):
        ws = Workspace()
        big = ws.take("buf", (100,), np.uint64)
        assert ws.grows == 1
        small = ws.take("buf", (10, 5), np.uint64)
        assert ws.grows == 1, "smaller request must not reallocate"
        assert small.base is big.base or small.base is ws.buffer("buf")
        ws.take("buf", (200,), np.uint64)
        assert ws.grows == 2

    def test_same_size_returns_same_storage(self):
        ws = Workspace()
        first = ws.take("x", (8, 8), np.uint8)
        second = ws.take("x", (8, 8), np.uint8)
        assert first.base is second.base

    def test_dtype_change_reallocates(self):
        ws = Workspace()
        ws.take("x", (16,), np.uint64)
        ws.take("x", (16,), np.int32)
        assert ws.grows == 2

    def test_names_and_nbytes(self):
        ws = Workspace()
        ws.take("b", (4,), np.uint64)
        ws.take("a", (2,), np.uint8)
        assert ws.names() == ("a", "b")
        assert ws.nbytes == 4 * 8 + 2

    def test_reserve_preallocates(self):
        ws = Workspace()
        ws.reserve("buf", 64, np.uint64)
        grows = ws.grows
        ws.take("buf", (8, 8), np.uint64)
        assert ws.grows == grows


class TestWorkspacePool:
    def test_reservations_keep_max(self):
        pool = WorkspacePool()
        pool.reserve("a", 10, np.uint64)
        pool.reserve("a", 100, np.uint64)
        pool.reserve("a", 50, np.uint64)
        assert pool.reservations() == (("a", 100, np.dtype(np.uint64)),)
        assert pool.reserved_bytes == 800

    def test_current_is_preallocated(self):
        pool = WorkspacePool()
        pool.reserve("a", 100, np.uint64)
        pool.reserve("b", 10, np.int32)
        ws = pool.current()
        grows = ws.grows
        ws.take("a", (100,), np.uint64)
        ws.take("b", (10,), np.int32)
        assert ws.grows == grows, "reserved takes must not allocate"

    def test_current_is_thread_local(self):
        pool = WorkspacePool()
        pool.reserve("a", 8, np.uint64)
        main_ws = pool.current()
        assert pool.current() is main_ws
        seen: list[Workspace] = []
        threads = [
            threading.Thread(target=lambda: seen.append(pool.current()))
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        workspaces = {id(ws) for ws in seen} | {id(main_ws)}
        assert len(workspaces) == 4, "each thread must own a private workspace"
        assert pool.num_workspaces == 4
        assert pool.nbytes == 4 * main_ws.nbytes
