"""Bit-exactness parity: the runtime Engine vs the reference Executor.

The Engine's contract (see :mod:`repro.runtime`) is that every request's
result is *bit-identical* — same dtype, same every-last-bit values, same
packed words for bitpacked tensors — to running that request alone through
the reference :class:`~repro.graph.executor.Executor` on the base graph,
regardless of how requests were coalesced into micro-batches and how many
intra-op threads the binary GEMMs use.

These tests enforce that contract over:

- synthetic graphs covering every op family the executor dispatches
  (float, binarized/bitpacked, int8, multi-output, packed input/output),
  across ``num_threads in {1, 2, 4}`` and batch factors ``{1, 3, 8}``;
- the full model zoo (a fast subset always; the complete grid under the
  opt-in ``slow`` marker).

The reference is always a *concatenation of per-sample Executor runs* on
the base graph — not an Executor run on a rebatched graph — because that
is the determinism statement the Engine makes to its callers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.converter import convert
from repro.core.bitpack import PackedTensor, pack_bits
from repro.core.types import Activation, Padding
from repro.graph.builder import GraphBuilder
from repro.graph.executor import Executor
from repro.graph.ir import Graph, TensorSpec
from repro.kernels.batchnorm import BatchNormParams
from repro.ptq import quantize_model
from repro.runtime import Engine
from repro.zoo import MODEL_REGISTRY, build_model

THREAD_COUNTS = (1, 2, 4)
BATCH_FACTORS = (1, 3, 8)

# ----------------------------------------------------------------- helpers


def _split_groups(value, base, factor):
    """Split a batched input into ``factor`` groups of ``base`` lead rows."""
    if isinstance(value, PackedTensor):
        return [
            PackedTensor(
                bits=value.bits[i * base : (i + 1) * base], channels=value.channels
            )
            for i in range(factor)
        ]
    return [value[i * base : (i + 1) * base] for i in range(factor)]


def _concat(values):
    if isinstance(values[0], PackedTensor):
        return PackedTensor(
            bits=np.concatenate([v.bits for v in values], axis=0),
            channels=values[0].channels,
        )
    return np.concatenate(values, axis=0)


def reference_outputs(graph: Graph, inputs, factor: int):
    """Concatenated per-group Executor runs — the Engine's ground truth."""
    bases = [graph.tensors[t].shape[0] for t in graph.inputs]
    groups = [
        _split_groups(value, base, factor) for value, base in zip(inputs, bases)
    ]
    per_group = []
    for i in range(factor):
        ex = Executor(graph)
        out = ex.run(*[g[i] for g in groups])
        per_group.append(out if isinstance(out, tuple) else (out,))
    outs = tuple(
        _concat([g[j] for g in per_group]) for j in range(len(per_group[0]))
    )
    return outs[0] if len(outs) == 1 else outs


def assert_bit_identical(actual, expected):
    """dtype-exact, bit-exact equality; PackedTensors compare words."""
    if isinstance(expected, tuple):
        assert isinstance(actual, tuple) and len(actual) == len(expected)
        for a, e in zip(actual, expected):
            assert_bit_identical(a, e)
        return
    if isinstance(expected, PackedTensor):
        assert isinstance(actual, PackedTensor)
        assert actual.channels == expected.channels
        assert actual.bits.dtype == expected.bits.dtype
        assert np.array_equal(actual.bits, expected.bits)
        return
    assert isinstance(actual, np.ndarray)
    assert actual.dtype == expected.dtype, (actual.dtype, expected.dtype)
    assert np.array_equal(actual, expected)


def _batched_input(graph: Graph, factor: int, rng, tensor=None):
    tensor = tensor or graph.inputs[0]
    spec = graph.tensors[tensor]
    shape = (spec.shape[0] * factor,) + tuple(spec.shape[1:])
    x = rng.standard_normal(shape).astype(np.float32)
    if spec.dtype == "bitpacked":
        return pack_bits(x)
    if spec.dtype == "int8":
        return (x * 30).clip(-128, 127).astype(np.int8)
    return x


# ------------------------------------------------------- synthetic graphs


def _float_net(rng):
    """Every float op family: conv/depthwise/pools/bn/dense/softmax."""
    b = GraphBuilder((1, 12, 12, 3))
    x = b.conv2d(
        b.input, rng.standard_normal((3, 3, 3, 8)).astype(np.float32),
        bias=rng.standard_normal(8).astype(np.float32),
        activation=Activation.RELU,
    )
    x = b.batch_norm(x, BatchNormParams.identity(8))
    x = b.depthwise_conv2d(x, rng.standard_normal((3, 3, 8)).astype(np.float32))
    x = b.relu6(x)
    x = b.maxpool2d(x, 2, 2)
    x = b.avgpool2d(x, 2, 2)
    x = b.global_avgpool(x)
    x = b.dense(x, rng.standard_normal((8, 5)).astype(np.float32))
    x = b.softmax(x)
    return b.finish(x)


def _binary_net(rng, padding):
    """Converted binarized chain -> lce_quantize + lce_bconv2d ops."""
    b = GraphBuilder((1, 8, 8, 8))
    w1 = rng.standard_normal((3, 3, 8, 16)).astype(np.float32)
    w2 = rng.standard_normal((3, 3, 16, 16)).astype(np.float32)
    x = b.binarize(b.input)
    x = b.conv2d(x, w1, binary_weights=True, padding=padding)
    x = b.batch_norm(x, BatchNormParams.identity(16))
    x = b.binarize(x)
    x = b.conv2d(x, w2, binary_weights=True, padding=padding)
    x = b.global_avgpool(x)
    x = b.dense(x, rng.standard_normal((16, 4)).astype(np.float32))
    return convert(b.finish(x), in_place=True).graph


def _bmaxpool_net(rng):
    """maxpool sunk through lce_quantize -> lce_bmaxpool2d after convert."""
    b = GraphBuilder((1, 8, 8, 3))
    x = b.conv2d(b.input, rng.standard_normal((3, 3, 3, 8)).astype(np.float32))
    x = b.maxpool2d(x, 2, 2)
    x = b.binarize(x)
    x = b.conv2d(
        x, rng.standard_normal((3, 3, 8, 8)).astype(np.float32),
        binary_weights=True, padding=Padding.SAME_ONE,
    )
    x = b.global_avgpool(x)
    g = convert(b.finish(x), in_place=True).graph
    assert any(n.op == "lce_bmaxpool2d" for n in g.nodes)
    return g


def _se_net(rng):
    """Squeeze-excite shape traffic: global pool, dense, sigmoid, reshape,
    broadcast mul — the rebatching-sensitive ops of RealToBinaryNet."""
    b = GraphBuilder((1, 6, 6, 8))
    x = b.conv2d(
        b.input, rng.standard_normal((3, 3, 8, 8)).astype(np.float32),
        padding=Padding.SAME_ZERO,
    )
    s = b.global_avgpool(x)
    s = b.dense(s, rng.standard_normal((8, 8)).astype(np.float32))
    s = b.sigmoid(s)
    s = b.reshape(s, (1, 1, 1, 8))
    x = b.mul(x, s)
    x = b.global_avgpool(x)
    return b.finish(x)


def _concat_pad_net(rng):
    """concat + pad_channels (DenseNet-style channel plumbing)."""
    b = GraphBuilder((1, 6, 6, 4))
    x = b.conv2d(
        b.input, rng.standard_normal((3, 3, 4, 4)).astype(np.float32),
        padding=Padding.SAME_ZERO,
    )
    y = b.pad_channels(x, after=4)
    z = b.concat([x, b.relu(x)])
    x = b.add(y, z)
    x = b.global_avgpool(x)
    return b.finish(x)


def _int8_net(rng):
    """Post-training-quantized net: conv2d_int8 / dense_int8 / requantize."""
    b = GraphBuilder((1, 10, 10, 3))
    x = b.conv2d(
        b.input, rng.standard_normal((3, 3, 3, 8)).astype(np.float32),
        bias=rng.standard_normal(8).astype(np.float32),
        activation=Activation.RELU,
    )
    x = b.conv2d(x, rng.standard_normal((3, 3, 8, 8)).astype(np.float32), stride=2)
    x = b.maxpool2d(x, 2, 2)
    x = b.global_avgpool(x)
    x = b.dense(x, rng.standard_normal((8, 5)).astype(np.float32))
    g = b.finish(x)
    calib = [rng.standard_normal((1, 10, 10, 3)).astype(np.float32) for _ in range(4)]
    return quantize_model(g, calib)


def _multi_output_net(rng):
    b = GraphBuilder((1, 6))
    a = b.dense(b.input, rng.standard_normal((6, 6)).astype(np.float32))
    c = b.relu(a)
    d = b.softmax(a)
    return b.finish(a, c, d)


def _packed_output_net(rng):
    """Graph whose output tensor is bitpacked (PackedTensor crosses the
    Engine boundary and must batch/split by words)."""
    g = Graph("packed_out")
    x = g.add_input("x", TensorSpec((1, 4, 4, 70)))
    q = g.add_node("lce_quantize", [x], [TensorSpec((1, 4, 4, 70), "bitpacked")])
    p = g.add_node(
        "lce_bmaxpool2d",
        [q.outputs[0]],
        [TensorSpec((1, 2, 2, 70), "bitpacked")],
        attrs={"pool_h": 2, "pool_w": 2, "stride_h": 2, "stride_w": 2},
    )
    g.outputs = [p.outputs[0]]
    g.verify()
    return g


def _packed_input_net(rng):
    """Graph whose *input* tensor is bitpacked."""
    g = Graph("packed_in")
    x = g.add_input("x", TensorSpec((1, 4, 4, 70), "bitpacked"))
    d = g.add_node("lce_dequantize", [x], [TensorSpec((1, 4, 4, 70), "float32")])
    g.outputs = [d.outputs[0]]
    g.verify()
    return g


def _grouped_bconv_net(rng):
    """Grouped binarized convolutions, both word-aligned (``cin_g % 64 == 0``,
    the packed-slice fast path) and unaligned (the repack fallback), under
    the full thread/batch grid."""
    from repro.core.bconv2d import pack_filters

    g = Graph("grouped_bconv")
    x = g.add_input("x", TensorSpec((1, 6, 6, 128)))
    q = g.add_node("lce_quantize", [x], [TensorSpec((1, 6, 6, 128), "bitpacked")])
    w1 = rng.standard_normal((3, 3, 64, 20)).astype(np.float32)
    c1 = g.add_node(
        "lce_bconv2d",
        [q.outputs[0]],
        [TensorSpec((1, 6, 6, 20), "float32")],
        attrs={
            "kernel_h": 3, "kernel_w": 3, "in_channels": 128,
            "out_channels": 20, "groups": 2,
        },
        params={"filter_bits": pack_filters(w1).bits},
    )
    q2 = g.add_node(
        "lce_quantize", [c1.outputs[0]], [TensorSpec((1, 6, 6, 20), "bitpacked")]
    )
    w2 = rng.standard_normal((3, 3, 10, 6)).astype(np.float32)
    c2 = g.add_node(
        "lce_bconv2d",
        [q2.outputs[0]],
        [TensorSpec((1, 6, 6, 6), "float32")],
        attrs={
            "kernel_h": 3, "kernel_w": 3, "in_channels": 20,
            "out_channels": 6, "groups": 2,
        },
        params={"filter_bits": pack_filters(w2).bits},
    )
    g.outputs = [c2.outputs[0]]
    g.verify()
    return g


SYNTHETIC_GRAPHS = {
    "float": _float_net,
    "binary_same_one": lambda rng: _binary_net(rng, Padding.SAME_ONE),
    "binary_same_zero": lambda rng: _binary_net(rng, Padding.SAME_ZERO),
    "bmaxpool": _bmaxpool_net,
    "se_block": _se_net,
    "concat_pad": _concat_pad_net,
    "int8": _int8_net,
    "multi_output": _multi_output_net,
    "packed_output": _packed_output_net,
    "packed_input": _packed_input_net,
    "grouped_bconv": _grouped_bconv_net,
}


# ----------------------------------------------------------- the test grid


@pytest.mark.parametrize("graph_name", sorted(SYNTHETIC_GRAPHS))
@pytest.mark.parametrize("num_threads", THREAD_COUNTS)
@pytest.mark.parametrize("factor", BATCH_FACTORS)
def test_synthetic_parity(graph_name, num_threads, factor, rng):
    graph = SYNTHETIC_GRAPHS[graph_name](rng)
    inputs = tuple(_batched_input(graph, factor, rng, t) for t in graph.inputs)
    expected = reference_outputs(graph, inputs, factor)
    with Engine(graph, num_threads=num_threads, max_batch_size=8) as engine:
        assert_bit_identical(engine.run(*inputs), expected)


@pytest.mark.parametrize("graph_name", sorted(SYNTHETIC_GRAPHS))
def test_synthetic_parity_run_many(graph_name, rng):
    """run_many across ragged request sizes must match per-request runs."""
    graph = SYNTHETIC_GRAPHS[graph_name](rng)
    sizes = [1, 3, 2, 1]
    requests = [
        tuple(_batched_input(graph, k, rng, t) for t in graph.inputs)
        for k in sizes
    ]
    with Engine(graph, num_threads=2, max_batch_size=4) as engine:
        results = engine.run_many(requests)
    for req, k, result in zip(requests, sizes, results):
        assert_bit_identical(result, reference_outputs(graph, req, k))


def test_same_zero_bitpacked_is_covered(rng):
    """The SAME_ZERO synthetic net must keep exercising the bitpacked-output
    path (zero-padding correction + thresholding through the arena), so the
    grid above covers that combination in both Executor and rebatched plans.
    """
    graph = SYNTHETIC_GRAPHS["binary_same_zero"](rng)
    assert any(
        n.op == "lce_bconv2d"
        and n.attrs.get("output_type") == "bitpacked"
        and "padding_correction" in n.params
        for n in graph.nodes
    )


def test_grouped_net_covers_both_group_branches(rng):
    """The grouped synthetic net must pin one word-aligned and one unaligned
    grouped convolution (fast packed-slice path and repack fallback)."""
    graph = SYNTHETIC_GRAPHS["grouped_bconv"](rng)
    cin_gs = [
        n.attrs["in_channels"] // n.attrs["groups"]
        for n in graph.nodes
        if n.op == "lce_bconv2d"
    ]
    assert any(c % 64 == 0 for c in cin_gs)
    assert any(c % 64 != 0 for c in cin_gs)


def test_plan_workspace_reused_across_calls(rng):
    """Steady-state plan execution must not reallocate arena buffers: the
    backing arrays stay identical across calls and the grow counter is flat
    after the first execution (the zero-per-call-allocations contract)."""
    graph = SYNTHETIC_GRAPHS["binary_same_one"](rng)
    with Engine(graph, num_threads=1) as engine:
        x = _batched_input(graph, 2, rng)
        engine.run(x)
        plan = engine.plan(2)
        assert plan.workspace.num_workspaces == 1
        ws = plan.workspace.workspaces()[0]
        assert "bconv/patches" in ws.names()
        before = {name: id(ws.buffer(name)) for name in ws.names()}
        grows = ws.grows
        for _ in range(3):
            engine.run(x)
        assert ws.grows == grows
        assert {name: id(ws.buffer(name)) for name in ws.names()} == before


def test_plan_workspace_preallocated_from_reservations(rng):
    """A plan's arena is fully reserved at compile time: the first executing
    thread's workspace performs zero grows beyond its preallocation."""
    graph = SYNTHETIC_GRAPHS["binary_same_zero"](rng)
    with Engine(graph, num_threads=2) as engine:
        plan = engine.plan(1)
        reserved = plan.workspace.reserved_bytes
        assert reserved > 0
        ws = plan.workspace.current()  # preallocates from reservations
        grows = ws.grows
        engine.run(_batched_input(graph, 1, rng))
        assert plan.workspace.workspaces()[0] is ws
        assert ws.grows == grows, "execution grew a buffer past its reservation"


# ----------------------------------------------------------------- the zoo

ZOO_INPUT_SIZE = {"binary_alexnet": 64, "xnornet": 64}
FAST_ZOO = ("quicknet_small", "birealnet18", "binarydensenet28")


def _zoo_engine_case(model_name, num_threads, factor, rng):
    size = ZOO_INPUT_SIZE.get(model_name, 32)
    model = convert(build_model(model_name, input_size=size), in_place=True)
    x = _batched_input(model.graph, factor, rng)
    expected = reference_outputs(model.graph, (x,), factor)
    with Engine(model, num_threads=num_threads, max_batch_size=8) as engine:
        assert_bit_identical(engine.run(x), expected)
        # The second run hits the plan cache; parity must survive reuse.
        assert_bit_identical(engine.run(x), expected)
        assert engine.stats().plan_cache_hits >= 1


@pytest.mark.parametrize("model_name", FAST_ZOO)
def test_zoo_parity_fast(model_name, rng):
    _zoo_engine_case(model_name, num_threads=2, factor=3, rng=rng)


@pytest.mark.slow
@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
@pytest.mark.parametrize("num_threads", THREAD_COUNTS)
@pytest.mark.parametrize("factor", BATCH_FACTORS)
def test_zoo_parity_full(model_name, num_threads, factor, rng):
    _zoo_engine_case(model_name, num_threads, factor, rng)
