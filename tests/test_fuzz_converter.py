"""Property-based fuzzing of the converter.

Generates random mixed binary/full-precision networks — random layer
kinds, paddings, layer orders, shortcut placements — and checks the
converter's core contract on every one: the optimized inference graph
computes the same function as the training graph.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.converter import convert
from repro.core.types import Padding
from repro.graph.builder import GraphBuilder
from repro.graph.executor import Executor
from repro.kernels.batchnorm import BatchNormParams


def _random_bn(rng, c):
    return BatchNormParams(
        gamma=rng.uniform(0.5, 1.5, c).astype(np.float32),
        beta=rng.standard_normal(c).astype(np.float32),
        mean=rng.standard_normal(c).astype(np.float32),
        variance=rng.uniform(0.3, 1.5, c).astype(np.float32),
    )


@st.composite
def random_network(draw):
    """A random-but-valid training graph plus a matching input tensor."""
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    channels = draw(st.sampled_from([8, 16, 24]))
    size = draw(st.integers(6, 10))
    n_blocks = draw(st.integers(1, 4))
    block_specs = [
        {
            "kind": draw(st.sampled_from(["binary", "float"])),
            "padding": draw(
                st.sampled_from([Padding.SAME_ONE, Padding.SAME_ZERO])
            ),
            "relu": draw(st.booleans()),
            "bn_first": draw(st.booleans()),
            "shortcut": draw(st.booleans()),
            "pool_after": draw(st.booleans()),
        }
        for _ in range(n_blocks)
    ]

    b = GraphBuilder((1, size, size, channels))
    x = b.input
    cur_size = size
    for spec in block_specs:
        if spec["kind"] == "binary":
            h = b.binarize(x)
            h = b.conv2d(
                h,
                rng.choice([-1.0, 1.0], (3, 3, channels, channels)).astype(np.float32),
                padding=spec["padding"],
                binary_weights=True,
            )
        else:
            h = b.conv2d(
                x,
                rng.standard_normal((3, 3, channels, channels)).astype(np.float32)
                * 0.2,
                padding=Padding.SAME_ZERO,
            )
        if spec["bn_first"]:
            h = b.batch_norm(h, _random_bn(rng, channels))
            if spec["relu"]:
                h = b.relu(h)
        else:
            if spec["relu"]:
                h = b.relu(h)
            h = b.batch_norm(h, _random_bn(rng, channels))
        if spec["shortcut"]:
            h = b.add(h, x)
        x = h
        if spec["pool_after"] and cur_size >= 4:
            x = b.maxpool2d(x, 2, 2)
            cur_size //= 2
    x = b.global_avgpool(x)
    graph = b.finish(x)
    input_value = rng.standard_normal((1, size, size, channels)).astype(np.float32)
    return graph, input_value


class TestConverterFuzz:
    @settings(max_examples=40, deadline=None)
    @given(case=random_network())
    def test_conversion_preserves_function(self, case):
        graph, x = case
        before = Executor(graph).run(x)
        model = convert(graph)
        model.graph.verify()
        after = Executor(model.graph).run(x)
        np.testing.assert_allclose(after, before, rtol=1e-3, atol=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(case=random_network())
    def test_no_emulation_ops_survive(self, case):
        graph, _ = case
        model = convert(graph)
        ops = {n.op for n in model.graph.nodes}
        # emulated binarized convolutions must all have been rewritten
        for n in model.graph.nodes:
            if n.op == "conv2d":
                assert not n.attr("binary_weights")
        assert "binarize" not in ops

    @settings(max_examples=20, deadline=None)
    @given(case=random_network())
    def test_serialization_roundtrip_after_conversion(self, case, tmp_path_factory):
        graph, x = case
        model = convert(graph)
        path = tmp_path_factory.mktemp("fuzz") / "m.lce"
        from repro.graph.serialization import load_model, save_model

        save_model(model.graph, path)
        reloaded = load_model(path)
        assert np.array_equal(
            Executor(model.graph).run(x), Executor(reloaded).run(x)
        )

    @settings(max_examples=15, deadline=None)
    @given(case=random_network())
    def test_macs_invariant(self, case):
        from repro.analysis.macs import count_macs

        graph, _ = case
        before = count_macs(graph)
        after = count_macs(convert(graph).graph)
        assert (before.binary, before.full_precision) == (
            after.binary,
            after.full_precision,
        )
