"""Tests for the op-level profiler and its aggregations."""

from __future__ import annotations

import pytest

from repro.converter import convert
from repro.hw.device import DeviceModel
from repro.profiling import (
    layer_stacks,
    op_class_shares,
    profile_graph,
    quicknet_table4_rows,
)
from repro.zoo import quicknet


@pytest.fixture(scope="module")
def quicknet_profiles():
    model = convert(quicknet("small", input_size=64), in_place=True)
    return profile_graph(DeviceModel.rpi4b(), model.graph), model.graph


class TestProfileGraph:
    def test_one_profile_per_node(self, quicknet_profiles):
        profiles, graph = quicknet_profiles
        assert len(profiles) == len(graph)
        assert [p.name for p in profiles] == [n.name for n in graph.nodes]

    def test_binary_flag(self, quicknet_profiles):
        profiles, _ = quicknet_profiles
        assert any(p.is_binary for p in profiles)
        assert any(not p.is_binary for p in profiles)
        for p in profiles:
            assert p.is_binary == p.op.startswith("lce_")

    def test_measure_records_wall_clock(self):
        model = convert(quicknet("small", input_size=32), in_place=True)
        profiles = profile_graph(
            DeviceModel.pixel1(), model.graph, measure=True
        )
        assert all(p.measured_s is not None and p.measured_s >= 0 for p in profiles)

    def test_no_measure_leaves_none(self, quicknet_profiles):
        profiles, _ = quicknet_profiles
        assert all(p.measured_s is None for p in profiles)

    def test_tracer_backed_measured_mode(self):
        """With a tracer, measured times come from ``executor.node``
        spans — the profile and a trace export of the run agree."""
        from repro.obs.export import node_seconds
        from repro.obs.trace import Tracer

        model = convert(quicknet("small", input_size=32), in_place=True)
        tracer = Tracer()
        profiles = profile_graph(
            DeviceModel.pixel1(), model.graph, tracer=tracer
        )
        assert all(p.measured_s is not None for p in profiles)
        measured = node_seconds(tracer.spans(), names=("executor.node",))
        for p in profiles:
            assert p.measured_s == measured[p.name]

    def test_align_spans_joins_measured_and_simulated(self):
        from repro.hw.latency import align_spans
        from repro.obs.trace import Tracer
        from repro.runtime import Engine

        import numpy as np

        model = convert(quicknet("small", input_size=32), in_place=True)
        tracer = Tracer()
        x = np.random.default_rng(0).standard_normal(
            (1, 32, 32, 3)
        ).astype(np.float32)
        with Engine(model, trace=tracer) as engine:
            engine.run(x)
        pairs = align_spans(
            DeviceModel.pixel1(), model.graph, tracer.spans()
        )
        assert set(pairs) == {n.name for n in model.graph.nodes}
        for measured_s, simulated_s in pairs.values():
            assert measured_s >= 0 and simulated_s > 0


def _node_span(node_name: str, dur_s: float, start_s: float = 0.0):
    from repro.obs.trace import SpanRecord

    return SpanRecord(
        name="plan.node",
        start_s=start_s,
        dur_s=dur_s,
        tid=0,
        path=("plan.execute",),
        args={"node": node_name},
    )


class TestAlignSpansEdgeCases:
    """Synthetic-span contracts: omission, aggregation, thread scaling."""

    @pytest.fixture(scope="class")
    def small_graph(self):
        return convert(quicknet("small", input_size=32), in_place=True).graph

    def test_nodes_without_spans_are_omitted(self, small_graph):
        from repro.hw.latency import align_spans

        names = [n.name for n in small_graph.nodes]
        recorded, skipped = names[:-1], names[-1]
        spans = [_node_span(name, 1e-4) for name in recorded]
        pairs = align_spans(DeviceModel.pixel1(), small_graph, spans)
        assert set(pairs) == set(recorded)
        assert skipped not in pairs

    def test_repeated_node_executions_aggregate_not_last_wins(
        self, small_graph
    ):
        from repro.hw.latency import align_spans

        # A rebatch-split plan executes the same node once per sub-batch;
        # the measured side must be the SUM of its spans, not whichever
        # span the tracer recorded last.
        target = small_graph.nodes[0].name
        durations = (5e-4, 3e-4, 2e-4)
        spans = [
            _node_span(target, dur, start_s=i * 1e-3)
            for i, dur in enumerate(durations)
        ]
        pairs = align_spans(DeviceModel.pixel1(), small_graph, spans)
        measured_s, _ = pairs[target]
        assert measured_s == pytest.approx(sum(durations))
        assert measured_s != durations[-1]

    def test_threads_scale_simulated_side_only(self, small_graph):
        from repro.hw.latency import align_spans

        spans = [_node_span(n.name, 1e-4) for n in small_graph.nodes]
        device = DeviceModel.pixel1()
        single = align_spans(device, small_graph, spans, threads=1)
        quad = align_spans(device, small_graph, spans, threads=4)
        assert set(single) == set(quad)
        # Measured values come from the spans and must not change.
        for name in single:
            assert quad[name][0] == single[name][0]
        # The binary convolutions parallelize: simulated time drops.
        bconv = [
            n.name for n in small_graph.nodes if n.op == "lce_bconv2d"
        ]
        assert bconv
        for name in bconv:
            assert quad[name][1] < single[name][1]
        # No node may get slower with more threads.
        for name in single:
            assert quad[name][1] <= single[name][1]


class TestAggregations:
    def test_op_class_shares_sum_to_100(self, quicknet_profiles):
        profiles, _ = quicknet_profiles
        shares = op_class_shares(profiles)
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_table4_rows_sum_to_100(self, quicknet_profiles):
        profiles, _ = quicknet_profiles
        rows = quicknet_table4_rows(profiles)
        assert sum(r.share_percent for r in rows) == pytest.approx(100.0)
        assert {r.op_class for r in rows} == {
            "LceQuantize",
            "LceBConv2d (accumulation loop)",
            "LceBConv2d (output transformation)",
            "Full precision Conv2D",
            "Full precision Add",
            "All other full precision",
        }

    def test_accumulation_loop_dominates(self, quicknet_profiles):
        profiles, _ = quicknet_profiles
        rows = {r.op_class: r.share_percent for r in quicknet_table4_rows(profiles)}
        assert rows["LceBConv2d (accumulation loop)"] == max(rows.values())

    def test_layer_stacks_cover_total(self, quicknet_profiles):
        profiles, _ = quicknet_profiles
        stacks = layer_stacks(profiles)
        stack_total = sum(s["binary_s"] + s["full_precision_s"] for s in stacks)
        profile_total = sum(p.simulated_s for p in profiles)
        assert stack_total == pytest.approx(profile_total)

    def test_one_stack_per_mac_layer(self, quicknet_profiles):
        profiles, graph = quicknet_profiles
        mac_ops = ("conv2d", "lce_bconv2d", "depthwise_conv2d", "dense")
        n_mac = sum(1 for n in graph.nodes if n.op in mac_ops)
        assert len(layer_stacks(profiles)) == n_mac
