"""Gateway behavior under a deterministic clock: batching, shedding, close.

Every deadline in here is virtual — the tests drive the batcher through
``tests/fake_clock.FakeClock`` and never sleep on the wall clock.  The
bit-identity oracle is the same one the runtime parity suite uses:
``reference_outputs`` (concatenated per-group Executor runs).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from fake_clock import FakeClock
from test_runtime_parity import (
    _batched_input,
    _binary_net,
    assert_bit_identical,
    reference_outputs,
)

from repro.core.types import Padding
from repro.runtime.engine import Engine
from repro.runtime.scheduler import (
    SCHEDULERS,
    GreedyCoalescer,
    LeastLoadedScheduler,
    RoundRobinScheduler,
)
from repro.serving import (
    SHED_CLOSED,
    SHED_QUEUE_FULL,
    SHED_UNKNOWN_MODEL,
    Clock,
    Gateway,
    GatewayConfig,
    MonotonicClock,
    Rejected,
    generate_arrivals,
)

pytestmark = pytest.mark.serving

RESULT_TIMEOUT_S = 20.0


@pytest.fixture
def graph(rng):
    return _binary_net(rng, Padding.SAME_ONE)


def make_gateway(graph, clock, **overrides):
    defaults = dict(max_batch=4, deadline_ms=100.0, max_queue=16, replicas=1)
    defaults.update(overrides)
    return Gateway({"m": graph}, GatewayConfig(**defaults), clock=clock)


# ------------------------------------------------------------ clock seam


def test_clocks_satisfy_protocol():
    assert isinstance(MonotonicClock(), Clock)
    assert isinstance(FakeClock(), Clock)


def test_fake_clock_sleep_wakes_on_advance():
    clock = FakeClock()
    done = threading.Event()

    def sleeper():
        clock.sleep(5.0)
        done.set()

    t = threading.Thread(target=sleeper, daemon=True)
    t.start()
    clock.wait_for_sleepers(1)
    clock.advance(4.9)
    assert not done.wait(0.05)  # virtual deadline not reached yet
    clock.advance(0.2)
    assert done.wait(RESULT_TIMEOUT_S)
    t.join(RESULT_TIMEOUT_S)
    assert clock.now() == pytest.approx(5.1)
    assert clock.sleepers == 0


def test_fake_clock_timed_wait_expires_on_advance():
    clock = FakeClock()
    cond = threading.Condition()
    woke = threading.Event()

    def waiter():
        with cond:
            clock.wait(cond, 2.0)
        woke.set()

    t = threading.Thread(target=waiter, daemon=True)
    t.start()
    clock.wait_for_timed_waiters(1)
    assert not woke.is_set()
    clock.advance(2.0)
    assert woke.wait(RESULT_TIMEOUT_S)
    t.join(RESULT_TIMEOUT_S)
    assert clock.timed_waiters == 0


# ------------------------------------------------- deadline vs size flush


def test_deadline_flushes_partial_batch(graph, rng):
    clock = FakeClock()
    x = _batched_input(graph, 1, rng)
    expected = reference_outputs(graph, (x,), 1)
    with make_gateway(graph, clock) as gw:
        future = gw.submit("m", x)
        # The batcher armed the 100 ms deadline and is parked on it; the
        # batch is not full, so nothing may flush until time moves.
        clock.wait_for_timed_waiters(1)
        assert not future.done()
        clock.advance(0.2)
        assert_bit_identical(future.result(RESULT_TIMEOUT_S), expected)
        stats = gw.stats()
    assert stats.batch_histogram == {1: 1}
    assert (stats.submitted, stats.accepted, stats.completed) == (1, 1, 1)
    # Latency is measured on the same virtual clock: submit at t=0,
    # flushed at t=0.2 -> exactly 200 ms, which pins the percentile math.
    assert stats.p50_ms == stats.p99_ms == pytest.approx(200.0)


def test_full_batch_flushes_without_time_passing(graph, rng):
    clock = FakeClock()
    x = _batched_input(graph, 1, rng)
    expected = reference_outputs(graph, (x,), 1)
    with make_gateway(graph, clock, max_batch=2, deadline_ms=1000.0) as gw:
        futures = [gw.submit("m", x) for _ in range(2)]
        for future in futures:  # flushes on size; no advance() ever happens
            assert_bit_identical(future.result(RESULT_TIMEOUT_S), expected)
        stats = gw.stats()
    assert clock.now() == 0.0
    assert stats.batch_histogram == {2: 1}


def test_deadline_counts_from_oldest_request(graph, rng):
    clock = FakeClock()
    x = _batched_input(graph, 1, rng)
    with make_gateway(graph, clock) as gw:
        f1 = gw.submit("m", x)
        clock.wait_for_timed_waiters(1)
        generation = clock.registrations
        clock.advance(0.06)  # 60 ms into the 100 ms deadline: no expiry
        f2 = gw.submit("m", x)  # must NOT reset the deadline
        # The enqueue woke the batcher; it re-armed with the REMAINING
        # 40 ms of f1's deadline (a fresh registration proves it).
        clock.wait_for_registrations(generation + 1)
        assert not f1.done() and not f2.done()
        clock.advance(0.05)  # 110 ms after f1: expired for the pair
        f1.result(RESULT_TIMEOUT_S)
        f2.result(RESULT_TIMEOUT_S)
        stats = gw.stats()
    # Both requests left in ONE batch at the oldest request's deadline.
    assert stats.batch_histogram == {2: 1}


def test_mixed_factors_coalesce_to_full_batch(graph, rng):
    clock = FakeClock()
    x2 = _batched_input(graph, 2, rng)
    x1 = _batched_input(graph, 1, rng)
    with make_gateway(graph, clock, max_batch=4) as gw:
        f_a = gw.submit("m", x2)
        f_b = gw.submit("m", x1)
        f_c = gw.submit("m", x1)
        assert_bit_identical(
            f_a.result(RESULT_TIMEOUT_S), reference_outputs(graph, (x2,), 2)
        )
        for f in (f_b, f_c):
            assert_bit_identical(
                f.result(RESULT_TIMEOUT_S), reference_outputs(graph, (x1,), 1)
            )
        stats = gw.stats()
    assert stats.batch_histogram == {4: 1}
    assert stats.mean_batch_size == pytest.approx(4.0)


def test_oversize_request_runs_alone(graph, rng):
    clock = FakeClock()
    x3 = _batched_input(graph, 3, rng)
    with make_gateway(graph, clock, max_batch=2) as gw:
        future = gw.submit("m", x3)
        assert_bit_identical(
            future.result(RESULT_TIMEOUT_S), reference_outputs(graph, (x3,), 3)
        )
        stats = gw.stats()
    assert stats.batch_histogram == {3: 1}


# --------------------------------------------------- admission + shedding


class StallEngine:
    """Engine wrapper whose run_many blocks until the test releases it."""

    def __init__(self, engine: Engine, started: threading.Event,
                 release: threading.Event) -> None:
        self._engine = engine
        self._started = started
        self._release = release

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def run_many(self, requests):
        self._started.set()
        if not self._release.wait(30.0):
            raise TimeoutError("StallEngine never released")
        return self._engine.run_many(requests)


def test_overload_sheds_with_bounded_queue(graph, rng):
    """Under overload the gateway sheds (typed), never grows the queue.

    max_batch=1 means every request flushes immediately with no deadline
    wait, so the FakeClock never needs advancing — the overload state is
    constructed, not raced: one request stalled inside the replica, one
    parked in dispatch, ``max_queue`` queued, and the next one is shed.
    """
    clock = FakeClock()
    started, release = threading.Event(), threading.Event()
    config = GatewayConfig(max_batch=1, deadline_ms=100.0, max_queue=2, replicas=1)
    gw = Gateway(
        {"m": graph},
        config,
        clock=clock,
        engine_factory=lambda *a, **k: StallEngine(Engine(*a, **k), started, release),
    )
    x = _batched_input(graph, 1, rng)
    expected = reference_outputs(graph, (x,), 1)
    try:
        f_a = gw.submit("m", x)
        assert started.wait(RESULT_TIMEOUT_S)  # A is inside the replica
        f_b = gw.submit("m", x)  # taken by the batcher, parked in dispatch
        clock.wait_for(lambda: gw.server("m").queue_depth() == 0)
        f_c = gw.submit("m", x)
        f_d = gw.submit("m", x)  # queue now holds max_queue=2
        assert gw.server("m").queue_depth() == 2
        f_e = gw.submit("m", x)  # bounced at admission
        reply = f_e.result(0.5)
        assert reply == Rejected("m", SHED_QUEUE_FULL)
        stats = gw.stats()
        assert stats.shed == 1 and stats.queue_depth["m"] <= config.max_queue
        release.set()
        for f in (f_a, f_b, f_c, f_d):
            assert_bit_identical(f.result(RESULT_TIMEOUT_S), expected)
    finally:
        release.set()
        gw.close()
    stats = gw.stats()
    assert (stats.submitted, stats.accepted, stats.shed) == (5, 4, 1)
    assert (stats.completed, stats.failed, stats.in_flight) == (4, 0, 0)
    assert stats.batch_histogram == {1: 4}


def test_unknown_model_is_typed_shed(graph):
    clock = FakeClock()
    with make_gateway(graph, clock) as gw:
        reply = gw.submit("nope", np.zeros((1,), np.float32)).result(0.5)
        assert isinstance(reply, Rejected)
        assert reply.reason == SHED_UNKNOWN_MODEL and reply.model == "nope"
        stats = gw.stats()
    assert (stats.submitted, stats.shed, stats.accepted) == (1, 1, 0)


def test_submit_after_close_is_typed_shed(graph, rng):
    clock = FakeClock()
    gw = make_gateway(graph, clock)
    x = _batched_input(graph, 1, rng)
    gw.close()
    reply = gw.submit("m", x).result(0.5)
    assert isinstance(reply, Rejected) and reply.reason == SHED_CLOSED


def test_malformed_input_raises_synchronously(graph):
    clock = FakeClock()
    with make_gateway(graph, clock) as gw:
        with pytest.raises(ValueError):  # wrong arity
            gw.submit("m", np.zeros((1, 8, 8, 8), np.float32), np.zeros(3))
        with pytest.raises(ValueError):  # empty batch
            gw.submit("m", np.zeros((0, 8, 8, 8), np.float32))
        stats = gw.stats()
    assert stats.submitted == 0  # rejected before admission accounting


def test_close_drains_admitted_requests(graph, rng):
    """close() cuts the deadline short and answers everything admitted."""
    clock = FakeClock()
    x = _batched_input(graph, 1, rng)
    expected = reference_outputs(graph, (x,), 1)
    gw = make_gateway(graph, clock, max_batch=8, deadline_ms=1000.0)
    f1 = gw.submit("m", x)
    f2 = gw.submit("m", x)
    clock.wait_for_timed_waiters(1)
    gw.close()  # no advance(): the drain must not depend on time
    for f in (f1, f2):
        assert_bit_identical(f.result(RESULT_TIMEOUT_S), expected)
    stats = gw.stats()
    assert stats.completed == 2 and stats.in_flight == 0
    gw.close()  # idempotent


def test_concurrent_close_is_single_shot(graph, rng):
    """Racing close() calls: both return, the drain happens exactly once.

    Before the close lock, two concurrent closers could interleave the
    teardown — the loser set the workers-closed flag while the winner's
    batcher was still dispatching, stranding a batch and hanging join().
    Now the loser parks on the close lock until the winner's full drain
    finishes, so both calls observe a completely drained gateway.
    """
    clock = FakeClock()
    x = _batched_input(graph, 1, rng)
    expected = reference_outputs(graph, (x,), 1)
    gw = make_gateway(graph, clock, max_batch=8, deadline_ms=1000.0)
    futures = [gw.submit("m", x) for _ in range(3)]
    clock.wait_for_timed_waiters(1)  # batcher parked on its deadline

    start = threading.Barrier(2)

    def closer():
        start.wait(RESULT_TIMEOUT_S)
        gw.close()

    closers = [threading.Thread(target=closer, daemon=True) for _ in range(2)]
    for t in closers:
        t.start()
    for t in closers:
        t.join(RESULT_TIMEOUT_S)
        assert not t.is_alive()  # neither racer may hang in the drain
    for f in futures:
        assert_bit_identical(f.result(RESULT_TIMEOUT_S), expected)
    stats = gw.stats()
    assert stats.completed == 3 and stats.in_flight == 0
    gw.close()  # still idempotent after the race


def test_close_concurrent_with_submit_resolves_every_future(graph, rng):
    """submit racing close: every future resolves — result or typed shed.

    Whatever the interleaving, a future handed to a caller must never
    dangle: requests admitted before the close drain to real outputs,
    requests after it come back as ``Rejected(SHED_CLOSED)``.
    """
    clock = FakeClock()
    x = _batched_input(graph, 1, rng)
    expected = reference_outputs(graph, (x,), 1)
    # deadline 0: the batcher flushes without parking on the clock, so
    # the race needs no advance() choreography.
    gw = make_gateway(graph, clock, max_batch=4, deadline_ms=0.0, max_queue=64)
    futures = []
    done = threading.Event()

    def submitter():
        for _ in range(10):
            futures.append(gw.submit("m", x))
        done.set()

    t = threading.Thread(target=submitter, daemon=True)
    t.start()
    gw.close()
    assert done.wait(RESULT_TIMEOUT_S)
    t.join(RESULT_TIMEOUT_S)
    shed = 0
    for f in futures:
        reply = f.result(RESULT_TIMEOUT_S)
        if isinstance(reply, Rejected):
            assert reply.reason == SHED_CLOSED
            shed += 1
        else:
            assert_bit_identical(reply, expected)
    stats = gw.stats()
    assert stats.submitted == 10 and stats.shed == shed
    assert stats.completed == 10 - shed and stats.in_flight == 0


# ------------------------------------------------------- tracing + stats


def test_gateway_spans_nest_engine_spans(graph, rng):
    from repro.obs.trace import Tracer

    tracer = Tracer()
    clock = FakeClock()
    x = _batched_input(graph, 1, rng)
    gw = Gateway(
        {"m": graph},
        GatewayConfig(max_batch=1, deadline_ms=100.0),
        clock=clock,
        trace=tracer,
    )
    try:
        gw.submit("m", x).result(RESULT_TIMEOUT_S)
    finally:
        gw.close()
    spans = tracer.spans()
    names = {s.name for s in spans}
    assert {"gateway.submit", "gateway.flush"} <= names
    flush_children = [s for s in spans if "gateway.flush" in s.path]
    assert any(s.name == "engine.run_many" for s in flush_children)


def test_stats_snapshot_is_consistent(graph, rng):
    clock = FakeClock()
    x = _batched_input(graph, 1, rng)
    with make_gateway(graph, clock, max_batch=1) as gw:
        for _ in range(3):
            gw.submit("m", x).result(RESULT_TIMEOUT_S)
        stats = gw.stats()
        snap = gw.metrics_snapshot()
    assert stats.submitted == stats.accepted + stats.shed
    assert stats.accepted == stats.completed + stats.failed
    assert stats.verified is True
    assert sum(stats.batch_histogram.values()) == stats.batches
    assert snap["gateway.m.accepted"] == stats.accepted
    assert snap["gateway.m.queue_depth"] == 0
    assert snap["gateway.m.replicas_healthy"] == 1


# ------------------------------------------------------ policy unit tests


def test_round_robin_scheduler_cycles():
    rr = RoundRobinScheduler()
    picks = []
    for _ in range(4):
        rid = rr.pick([0, 1])
        rr.record(rid)
        picks.append(rid)
    assert picks == [0, 1, 0, 1]
    # With only one candidate idle it must still pick it.
    rid = rr.pick([1])
    assert rid == 1


def test_least_loaded_scheduler_balances():
    ll = LeastLoadedScheduler()
    first = ll.pick([0, 1])
    ll.record(first)
    second = ll.pick([0, 1])
    assert second != first
    ll.record(second)
    ll.record(second)
    assert ll.pick([first, second]) == first


def test_scheduler_registry_matches_config():
    for name in SCHEDULERS:
        GatewayConfig(scheduler=name).validate()
    with pytest.raises(ValueError):
        GatewayConfig(scheduler="fifo").validate()


def test_greedy_coalescer_chunks():
    c = GreedyCoalescer()
    chunks = c.coalesce([("a", 2), ("b", 1), ("c", 2)], max_batch=4)
    assert [[x for x, _ in chunk] for chunk in chunks] == [["a", "b"], ["c"]]
    assert c.coalesce([("x", 5)], max_batch=4) == [[("x", 5)]]


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(max_batch=0),
        dict(deadline_ms=-1.0),
        dict(max_queue=0),
        dict(replicas=0),
        dict(max_replica_failures=0),
    ],
)
def test_config_validation_rejects(kwargs):
    with pytest.raises(ValueError):
        GatewayConfig(**kwargs).validate()


# --------------------------------------------------- loadgen determinism


def test_generate_arrivals_is_seed_deterministic():
    profile = [("a", 3.0), ("b", 1.0), ("zero", 0.0)]
    first = generate_arrivals(profile, 50.0, 2.0, np.random.default_rng(7))
    second = generate_arrivals(profile, 50.0, 2.0, np.random.default_rng(7))
    assert first == second
    other = generate_arrivals(profile, 50.0, 2.0, np.random.default_rng(8))
    assert first != other
    times = [a.at_s for a in first]
    assert times == sorted(times) and all(0 < t < 2.0 for t in times)
    assert {a.model for a in first} <= {"a", "b"}  # zero weight never drawn
    assert len(first) > 50  # ~100 expected at 50 rps over 2 s


def test_generate_arrivals_validates():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        generate_arrivals([("a", 1.0)], 0.0, 1.0, rng)
    with pytest.raises(ValueError):
        generate_arrivals([("a", 1.0)], 10.0, 0.0, rng)
    with pytest.raises(ValueError):
        generate_arrivals([], 10.0, 1.0, rng)
    with pytest.raises(ValueError):
        generate_arrivals([("a", -1.0)], 10.0, 1.0, rng)
