"""Tests for repro.core.im2col: geometry and patch extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitpack import pack_bits, unpack_bits
from repro.core.im2col import (
    conv_geometry,
    effective_kernel,
    im2col_float,
    im2col_packed,
    padded_tap_mask,
)
from repro.core.types import Padding


class TestEffectiveKernel:
    def test_no_dilation(self):
        assert effective_kernel(3, 1) == 3

    def test_dilation(self):
        assert effective_kernel(3, 2) == 5
        assert effective_kernel(5, 3) == 13


class TestConvGeometry:
    def test_same_stride1(self):
        g = conv_geometry(8, 8, 3, 3, 1, 1, Padding.SAME_ZERO)
        assert (g.out_h, g.out_w) == (8, 8)
        assert (g.pad_top, g.pad_bottom, g.pad_left, g.pad_right) == (1, 1, 1, 1)

    def test_same_stride2(self):
        g = conv_geometry(7, 7, 3, 3, 2, 1, Padding.SAME_ONE)
        assert (g.out_h, g.out_w) == (4, 4)

    def test_valid(self):
        g = conv_geometry(8, 8, 3, 3, 1, 1, Padding.VALID)
        assert (g.out_h, g.out_w) == (6, 6)
        assert g.pad_top == g.pad_left == 0

    def test_valid_with_stride(self):
        g = conv_geometry(9, 9, 3, 3, 2, 1, Padding.VALID)
        assert (g.out_h, g.out_w) == (4, 4)

    def test_asymmetric_same_padding(self):
        # TF puts the extra pad at the bottom/right.
        g = conv_geometry(8, 8, 2, 2, 1, 1, Padding.SAME_ZERO)
        assert (g.pad_top, g.pad_bottom) == (0, 1)

    def test_valid_too_small_raises(self):
        with pytest.raises(ValueError):
            conv_geometry(2, 2, 3, 3, 1, 1, Padding.VALID)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            conv_geometry(0, 8, 3, 3, 1, 1, Padding.VALID)

    def test_dilated_same(self):
        g = conv_geometry(8, 8, 3, 3, 1, 2, Padding.SAME_ZERO)
        assert (g.out_h, g.out_w) == (8, 8)
        assert g.pad_top + g.pad_bottom == 4


def _brute_force_conv(x, w, stride, dilation, padding, pad_value):
    """O(everything) float convolution used as ground truth."""
    n, h, ww, cin = x.shape
    kh, kw, _, cout = w.shape
    geom = conv_geometry(h, ww, kh, kw, stride, dilation, padding)
    xp = np.pad(
        x,
        ((0, 0), (geom.pad_top, geom.pad_bottom), (geom.pad_left, geom.pad_right), (0, 0)),
        constant_values=pad_value,
    )
    out = np.zeros((n, geom.out_h, geom.out_w, cout), np.float64)
    for b in range(n):
        for oy in range(geom.out_h):
            for ox in range(geom.out_w):
                for ky in range(kh):
                    for kx in range(kw):
                        y = oy * stride + ky * dilation
                        xx = ox * stride + kx * dilation
                        out[b, oy, ox, :] += xp[b, y, xx, :] @ w[ky, kx, :, :]
    return out.astype(np.float32)


class TestIm2ColFloat:
    @pytest.mark.parametrize("padding", [Padding.SAME_ZERO, Padding.SAME_ONE, Padding.VALID])
    @pytest.mark.parametrize("stride", [1, 2])
    def test_gemm_equals_brute_force(self, rng, padding, stride):
        x = rng.standard_normal((2, 6, 7, 3)).astype(np.float32)
        w = rng.standard_normal((3, 3, 3, 4)).astype(np.float32)
        pad_value = 1.0 if padding is Padding.SAME_ONE else 0.0
        patches, geom = im2col_float(x, 3, 3, stride, 1, padding, pad_value)
        got = (patches @ w.reshape(-1, 4)).reshape(2, geom.out_h, geom.out_w, 4)
        expected = _brute_force_conv(x, w, stride, 1, padding, pad_value)
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-5)

    def test_dilation(self, rng):
        x = rng.standard_normal((1, 9, 9, 2)).astype(np.float32)
        w = rng.standard_normal((3, 3, 2, 2)).astype(np.float32)
        patches, geom = im2col_float(x, 3, 3, 1, 2, Padding.SAME_ZERO, 0.0)
        got = (patches @ w.reshape(-1, 2)).reshape(1, geom.out_h, geom.out_w, 2)
        expected = _brute_force_conv(x, w, 1, 2, Padding.SAME_ZERO, 0.0)
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-5)

    def test_patch_shape(self, rng):
        x = rng.standard_normal((2, 8, 8, 5)).astype(np.float32)
        patches, geom = im2col_float(x, 3, 3, 1, 1, Padding.SAME_ZERO)
        assert patches.shape == (2 * 8 * 8, 9 * 5)

    def test_rejects_non_nhwc(self, rng):
        with pytest.raises(ValueError):
            im2col_float(rng.standard_normal((8, 8, 5)), 3, 3)


class TestIm2ColPacked:
    def test_matches_float_one_padding(self, rng):
        x = rng.choice([-1.0, 1.0], (1, 5, 5, 70)).astype(np.float32)
        packed = pack_bits(x)
        patches, geom = im2col_packed(packed, 3, 3, 1, 1, Padding.SAME_ONE)
        assert patches.shape == (25, 9 * 2)
        # Decode each tap's words and compare with the float im2col.
        fpatches, _ = im2col_float(x, 3, 3, 1, 1, Padding.SAME_ONE, 1.0)
        from repro.core.bitpack import PackedTensor

        decoded = unpack_bits(
            PackedTensor(patches.reshape(25, 9, 2).copy(), channels=70)
        )
        assert np.array_equal(decoded.reshape(25, -1), fpatches)

    def test_spatial_padding_is_plus_one(self):
        x = -np.ones((1, 2, 2, 64), np.float32)  # all -1 content
        patches, _ = im2col_packed(pack_bits(x), 3, 3, 1, 1, Padding.SAME_ONE)
        # Corner output pixel reads 5 padded taps: those words must be 0.
        corner = patches[0].reshape(9, 1)
        n_zero_words = int((corner == 0).sum())
        assert n_zero_words == 5

    def test_rejects_non_4d(self, rng):
        x = rng.standard_normal((5, 5, 64)).astype(np.float32)
        with pytest.raises(ValueError):
            im2col_packed(pack_bits(x), 3, 3)


class TestPaddedTapMask:
    def test_interior_pixels_have_no_padded_taps(self):
        geom = conv_geometry(5, 5, 3, 3, 1, 1, Padding.SAME_ZERO)
        mask = padded_tap_mask(5, 5, 3, 3, 1, 1, geom)
        interior = mask.reshape(5, 5, 9)[1:-1, 1:-1]
        assert not interior.any()

    def test_corner_pixel_padded_tap_count(self):
        geom = conv_geometry(5, 5, 3, 3, 1, 1, Padding.SAME_ZERO)
        mask = padded_tap_mask(5, 5, 3, 3, 1, 1, geom)
        # top-left output pixel: first row and first column of taps padded.
        assert mask.reshape(5, 5, 9)[0, 0].sum() == 5

    def test_valid_padding_has_no_padded_taps(self):
        geom = conv_geometry(5, 5, 3, 3, 1, 1, Padding.VALID)
        mask = padded_tap_mask(5, 5, 3, 3, 1, 1, geom)
        assert not mask.any()


class TestMemoization:
    """Shape-dependent geometry work happens once per shape, not per call."""

    def test_conv_geometry_cache_hits(self):
        conv_geometry.cache_clear()
        a = conv_geometry(13, 11, 3, 3, 2, 1, Padding.SAME_ONE)
        b = conv_geometry(13, 11, 3, 3, 2, 1, Padding.SAME_ONE)
        assert a is b
        info = conv_geometry.cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_gather_indices_cache_hits_and_read_only(self):
        from repro.core.im2col import gather_indices

        gather_indices.cache_clear()
        geom = conv_geometry(13, 11, 3, 3, 1, 1, Padding.SAME_ONE)
        rows, cols = gather_indices(geom, 3, 3, 1, 1)
        rows2, cols2 = gather_indices(geom, 3, 3, 1, 1)
        assert rows is rows2 and cols is cols2
        assert not rows.flags.writeable and not cols.flags.writeable
        assert gather_indices.cache_info().hits == 1

    def test_padded_tap_mask_cache_hits_and_read_only(self):
        padded_tap_mask.cache_clear()
        geom = conv_geometry(13, 11, 3, 3, 1, 1, Padding.SAME_ZERO)
        mask = padded_tap_mask(13, 11, 3, 3, 1, 1, geom)
        assert padded_tap_mask(13, 11, 3, 3, 1, 1, geom) is mask
        assert not mask.flags.writeable
        info = padded_tap_mask.cache_info()
        assert info.misses == 1 and info.hits == 1
