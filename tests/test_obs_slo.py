"""Per-model SLO evaluation on a virtual clock.

The monitor is driven with hand-built metrics snapshots and a plain
callable timebase, so every window edge, status transition and gauge
write is deterministic — no gateway, no threads.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    BREACHED,
    DEGRADED,
    HEALTHY,
    STATUS_CODES,
    MetricsRegistry,
    SLOConfig,
    SLOMonitor,
)


class _Feed:
    """A mutable metrics snapshot + clock the tests steer directly."""

    def __init__(self) -> None:
        self.t = 0.0
        self.snap: dict[str, object] = {}

    def now(self) -> float:
        return self.t

    def set(self, model, *, accepted=0, shed=0, completed=0, failed=0,
            latency=()):
        counts: dict[float, int] = {}
        for ms in latency:
            counts[float(ms)] = counts.get(float(ms), 0) + 1
        self.snap.update({
            f"gateway.{model}.accepted": accepted,
            f"gateway.{model}.shed": shed,
            f"gateway.{model}.completed": completed,
            f"gateway.{model}.failed": failed,
            f"gateway.{model}.latency_ms": {
                "count": len(tuple(latency)),
                "total": float(sum(latency)),
                "min": min(latency, default=0.0),
                "max": max(latency, default=0.0),
                "counts": counts,
            },
        })

    def metrics(self) -> dict[str, object]:
        return dict(self.snap)


def _monitor(config, registry=None):
    feed = _Feed()
    monitor = SLOMonitor(
        {"m": config}, metrics_fn=feed.metrics, registry=registry,
        now=feed.now,
    )
    return monitor, feed


# ------------------------------------------------------------ configuration
def test_config_validation():
    SLOConfig(target_p95_ms=10.0).validate()  # fine
    with pytest.raises(ValueError):
        SLOConfig(window_s=0.0).validate()
    with pytest.raises(ValueError):
        SLOConfig(target_p95_ms=-1.0).validate()
    with pytest.raises(ValueError):
        SLOConfig(error_budget_pct=101.0).validate()
    with pytest.raises(ValueError):
        SLOConfig(degraded_fraction=0.0).validate()
    with pytest.raises(ValueError):
        # a hit-rate objective is meaningless without a deadline
        SLOConfig(deadline_hit_rate=0.99).validate()
    SLOConfig(deadline_hit_rate=0.99, deadline_ms=5.0).validate()


def test_monitor_requires_models_and_validates_configs():
    with pytest.raises(ValueError):
        SLOMonitor({}, metrics_fn=dict)
    with pytest.raises(ValueError):
        SLOMonitor(
            {"m": SLOConfig(target_p95_ms=-1.0)}, metrics_fn=dict
        )


def test_no_config_is_always_healthy():
    feed = _Feed()
    monitor = SLOMonitor({"m": None}, metrics_fn=feed.metrics, now=feed.now)
    health = monitor.evaluate()["m"]
    assert health.status == HEALTHY
    assert health.reasons == ("no slo configured",)


# --------------------------------------------------------------- judgements
def test_p95_breach_and_recovery():
    monitor, feed = _monitor(SLOConfig(target_p95_ms=10.0, window_s=60.0))
    feed.t = 1.0
    feed.set("m", accepted=3, completed=3, latency=[50.0, 50.0, 50.0])
    health = monitor.evaluate()["m"]
    assert health.status == BREACHED
    assert health.p95_ms == 50.0
    assert health.window_completed == 3
    assert any("p95" in r for r in health.reasons)

    # A window later the slow requests have aged out and fast ones
    # replaced them: the same cumulative counters now judge healthy.
    feed.t = 100.0
    feed.set("m", accepted=6, completed=6,
             latency=[50.0, 50.0, 50.0, 1.0, 1.0, 1.0])
    health = monitor.evaluate()["m"]
    assert health.status == HEALTHY
    assert health.p95_ms == 1.0
    assert health.reasons == ("ok",)


def test_degraded_band_before_breach():
    monitor, feed = _monitor(
        SLOConfig(target_p95_ms=10.0, degraded_fraction=0.8)
    )
    feed.t = 1.0
    feed.set("m", accepted=1, completed=1, latency=[9.0])  # 80% < 9 <= 10
    health = monitor.evaluate()["m"]
    assert health.status == DEGRADED
    assert any("within" in r for r in health.reasons)


def test_error_budget_breach():
    monitor, feed = _monitor(SLOConfig(error_budget_pct=10.0))
    feed.t = 1.0
    feed.set("m", accepted=8, shed=2, completed=8)  # 20% > 10%
    health = monitor.evaluate()["m"]
    assert health.status == BREACHED
    assert health.error_rate == pytest.approx(0.2)
    assert any("budget" in r for r in health.reasons)


def test_deadline_hit_rate_breach():
    monitor, feed = _monitor(
        SLOConfig(deadline_ms=5.0, deadline_hit_rate=0.9)
    )
    feed.t = 1.0
    feed.set("m", accepted=4, completed=4, latency=[1.0, 2.0, 8.0, 9.0])
    health = monitor.evaluate()["m"]
    assert health.status == BREACHED
    assert health.deadline_hit_rate == pytest.approx(0.5)


def test_empty_window_is_vacuously_healthy():
    monitor, feed = _monitor(
        SLOConfig(target_p95_ms=1.0, error_budget_pct=0.0,
                  deadline_ms=1.0, deadline_hit_rate=1.0)
    )
    feed.t = 1.0
    health = monitor.evaluate()["m"]
    assert health.status == HEALTHY
    assert health.p95_ms == 0.0
    assert health.deadline_hit_rate == 1.0
    assert health.window_completed == 0


# ------------------------------------------------------------------ windows
def test_window_baseline_is_newest_old_enough_sample():
    monitor, feed = _monitor(SLOConfig(target_p95_ms=10.0, window_s=10.0))
    feed.set("m", accepted=1, completed=1, latency=[100.0])
    feed.t = 1.0
    assert monitor.evaluate()["m"].status == BREACHED  # slow req in window

    feed.t = 50.0  # the t=1 sample is now the baseline; no new traffic
    health = monitor.evaluate()["m"]
    assert health.status == HEALTHY  # the slow request aged out
    assert health.window_completed == 0


def test_samples_prune_but_keep_active_baseline():
    monitor, feed = _monitor(SLOConfig(target_p95_ms=10.0, window_s=5.0))
    for i in range(50):
        feed.t = float(i)
        feed.set("m", accepted=i, completed=i, latency=[1.0] * i)
        monitor.evaluate()
    # pruning bounds the deque to ~the window span, not 50 samples
    assert len(monitor._samples) <= 10
    health = monitor.evaluate()["m"]
    # the retained baseline still yields a sane per-window figure
    assert 0 < health.window_completed <= 10


# ------------------------------------------------------------------- gauges
def test_slo_gauges_mirror_the_verdict():
    registry = MetricsRegistry()
    monitor, feed = _monitor(
        SLOConfig(target_p95_ms=10.0), registry=registry
    )
    feed.t = 1.0
    feed.set("m", accepted=2, completed=2, latency=[50.0, 50.0])
    health = monitor.evaluate()["m"]
    snap = registry.snapshot()
    assert snap["slo.m.status"] == STATUS_CODES[BREACHED]
    assert snap["slo.m.p95_ms"] == health.p95_ms == 50.0
    assert snap["slo.m.error_rate"] == 0.0
    assert snap["slo.m.deadline_hit_rate"] == 1.0


def test_health_to_dict_round_trips():
    monitor, feed = _monitor(SLOConfig(target_p95_ms=10.0))
    feed.t = 1.0
    health = monitor.evaluate()["m"]
    d = health.to_dict()
    assert d["model"] == "m"
    assert d["status"] == HEALTHY
    assert isinstance(d["reasons"], list)
