"""Integration tests: the full Figure-1 pipeline, end to end.

Train-graph construction -> conversion -> execution -> serialization ->
deployment-side execution -> profiling, on real zoo models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.macs import count_macs
from repro.converter import convert
from repro.graph.executor import Executor
from repro.graph.serialization import load_model, save_model
from repro.hw.device import DeviceModel
from repro.hw.latency import graph_latency
from repro.profiling import profile_graph
from repro.zoo import binary_resnet18, quicknet


@pytest.fixture(scope="module")
def quicknet_pipeline(tmp_path_factory):
    """One shared small QuickNet taken through the whole pipeline."""
    rng = np.random.default_rng(0)
    training_graph = quicknet("small", input_size=64)
    x = rng.standard_normal((1, 64, 64, 3)).astype(np.float32)
    training_out = Executor(training_graph).run(x)
    model = convert(training_graph)
    path = tmp_path_factory.mktemp("models") / "quicknet_small.lce"
    save_model(model.graph, path)
    deployed = load_model(path)
    return {
        "training_graph": training_graph,
        "model": model,
        "deployed": deployed,
        "x": x,
        "training_out": training_out,
        "path": path,
    }


class TestTrainToDeploy:
    def test_conversion_preserves_predictions(self, quicknet_pipeline):
        p = quicknet_pipeline
        converted_out = Executor(p["model"].graph).run(p["x"])
        np.testing.assert_allclose(
            converted_out, p["training_out"], rtol=1e-3, atol=1e-4
        )

    def test_serialized_model_identical(self, quicknet_pipeline):
        p = quicknet_pipeline
        converted_out = Executor(p["model"].graph).run(p["x"])
        deployed_out = Executor(p["deployed"]).run(p["x"])
        assert np.array_equal(converted_out, deployed_out)

    def test_model_file_smaller_than_float_params(self, quicknet_pipeline):
        p = quicknet_pipeline
        file_size = p["path"].stat().st_size
        float_params = p["training_graph"].param_nbytes()
        assert file_size < float_params / 4  # mostly-binary model shrinks a lot

    def test_conversion_reduces_node_count(self, quicknet_pipeline):
        r = quicknet_pipeline["model"].report
        assert r.nodes_after < r.nodes_before

    def test_macs_preserved(self, quicknet_pipeline):
        p = quicknet_pipeline
        a = count_macs(p["training_graph"])
        b = count_macs(p["model"].graph)
        assert (a.binary, a.full_precision) == (b.binary, b.full_precision)


class TestSimulatedDeployment:
    def test_latency_estimates_for_both_devices(self, quicknet_pipeline):
        g = quicknet_pipeline["model"].graph
        pixel = graph_latency(DeviceModel.pixel1(), g).total_ms
        rpi = graph_latency(DeviceModel.rpi4b(), g).total_ms
        assert 0 < pixel < rpi  # the RPi core is slower across the board

    def test_profiler_covers_model(self, quicknet_pipeline):
        g = quicknet_pipeline["model"].graph
        profiles = profile_graph(DeviceModel.pixel1(), g, measure=True)
        assert len(profiles) == len(g)
        binary_time = sum(p.simulated_s for p in profiles if p.is_binary)
        total = sum(p.simulated_s for p in profiles)
        assert binary_time / total > 0.3  # QuickNet is mostly binary

    def test_measured_and_simulated_correlate(self, quicknet_pipeline):
        """NumPy wall-clock is not ARM latency, but across ops spanning
        orders of magnitude the two should correlate positively."""
        g = quicknet_pipeline["model"].graph
        profiles = profile_graph(DeviceModel.pixel1(), g, measure=True)
        sim = np.array([p.simulated_s for p in profiles])
        meas = np.array([p.measured_s for p in profiles])
        keep = meas > 1e-6  # ignore timer-noise ops
        corr = np.corrcoef(np.log(sim[keep]), np.log(meas[keep]))[0, 1]
        assert corr > 0.3


class TestShortcutAblationPipeline:
    def test_variants_execute_identically_except_shortcuts(self, rng):
        """A and C share binary-conv weights (same seed); outputs differ
        because of the shortcuts, but both run through the full pipeline."""
        out = {}
        for variant in ("A", "C"):
            g = binary_resnet18(variant, input_size=32)
            model = convert(g, in_place=True)
            x = rng.standard_normal((1, 32, 32, 3)).astype(np.float32)
            out[variant] = Executor(model.graph).run(x)
        assert out["A"].shape == out["C"].shape == (1, 1000)
        assert not np.allclose(out["A"], out["C"])
