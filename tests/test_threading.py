"""Tests for multi-threaded BGEMM and the threaded latency model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bgemm import bgemm_blocked
from repro.core.bitpack import pack_bits
from repro.core.threading import bgemm_parallel
from repro.hw.device import DeviceModel
from repro.hw.latency import LatencyBreakdown


def _operands(rng, m, n, depth):
    a = pack_bits(rng.choice([-1.0, 1.0], (m, depth))).bits
    b = pack_bits(rng.choice([-1.0, 1.0], (n, depth))).bits
    return a, b


class TestParallelBgemm:
    @given(
        m=st.integers(1, 700),
        threads=st.integers(1, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_bit_identical_to_blocked(self, m, threads, seed):
        rng = np.random.default_rng(seed)
        a, b = _operands(rng, m, 8, 96)
        expected = bgemm_blocked(a, b, 96)
        got = bgemm_parallel(a, b, 96, num_threads=threads, tile_m=128)
        assert np.array_equal(got, expected)

    def test_rejects_bad_thread_count(self, rng):
        a, b = _operands(rng, 8, 8, 64)
        with pytest.raises(ValueError):
            bgemm_parallel(a, b, 64, num_threads=0)

    def test_large_problem(self, rng):
        a, b = _operands(rng, 1500, 32, 200)
        assert np.array_equal(
            bgemm_parallel(a, b, 200, num_threads=3),
            bgemm_blocked(a, b, 200),
        )

    @pytest.mark.parametrize("num_threads", [2, 4])
    @pytest.mark.parametrize("kw", [{"tile_m": 0}, {"tile_n": -3}])
    def test_rejects_bad_tiles_on_the_parallel_branch(
        self, rng, num_threads, kw
    ):
        # Regression: tile validation used to run only on the serial
        # (num_threads=1) branch, so a non-positive tile on the threaded
        # path skipped every tile loop and returned uninitialized output.
        a, b = _operands(rng, 64, 8, 64)
        with pytest.raises(ValueError):
            bgemm_parallel(a, b, 64, num_threads=num_threads, **kw)

    @pytest.mark.parametrize("thread_grain", [1, 2, 3, 100])
    def test_thread_grain_is_bit_identical(self, rng, thread_grain):
        a, b = _operands(rng, 700, 16, 128)
        assert np.array_equal(
            bgemm_parallel(
                a, b, 128, num_threads=3, tile_m=64,
                thread_grain=thread_grain,
            ),
            bgemm_blocked(a, b, 128),
        )

    def test_k_word_blocking_under_threads(self, rng):
        a, b = _operands(rng, 300, 16, 300)
        assert np.array_equal(
            bgemm_parallel(a, b, 300, num_threads=2, tile_k_words=2),
            bgemm_blocked(a, b, 300),
        )

    def test_rejects_bad_thread_grain(self, rng):
        a, b = _operands(rng, 8, 8, 64)
        with pytest.raises(ValueError):
            bgemm_parallel(a, b, 64, num_threads=2, thread_grain=0)


class TestThreadedLatencyModel:
    def test_single_thread_unchanged(self):
        b = LatencyBreakdown(overhead_s=1.0, accumulation_s=4.0)
        assert b.with_threads(1) is b

    def test_compute_scales_overhead_does_not(self):
        b = LatencyBreakdown(overhead_s=1.0, accumulation_s=8.5)
        t = b.with_threads(2)
        assert t.overhead_s == 1.0
        assert t.accumulation_s < 8.5

    def test_memory_bound_scales_worse(self):
        compute = LatencyBreakdown(accumulation_s=10.0, memory_bound=False)
        memory = LatencyBreakdown(accumulation_s=10.0, memory_bound=True)
        assert compute.with_threads(4).accumulation_s < memory.with_threads(4).accumulation_s

    def test_rejects_bad_threads(self):
        with pytest.raises(ValueError):
            LatencyBreakdown().with_threads(0)

    def test_graph_latency_improves_with_threads(self):
        from repro.converter import convert
        from repro.hw.latency import graph_latency
        from repro.zoo import quicknet

        model = convert(quicknet("small", input_size=64), in_place=True)
        dev = DeviceModel.rpi4b()
        t1 = graph_latency(dev, model.graph, threads=1).total_ms
        t2 = graph_latency(dev, model.graph, threads=2).total_ms
        t4 = graph_latency(dev, model.graph, threads=4).total_ms
        assert t4 < t2 < t1
        assert t1 / t4 < 4.0  # sub-linear: Amdahl + bandwidth saturation


class TestThreadingExperiment:
    def test_lce_scales_dabnn_does_not(self):
        from repro.experiments.threading import run

        results = {(r.framework, r.threads): r.latency_ms for r in run("rpi4b")}
        assert results[("lce", 4)] < results[("lce", 1)]
        assert results[("dabnn", 4)] == results[("dabnn", 1)]
        # single-threaded LCE already beats DaBNN; threading widens the gap
        assert results[("lce", 1)] < results[("dabnn", 1)]
