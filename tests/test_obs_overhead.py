"""The disabled-tracer overhead budget.

Instrumenting the hot path is only acceptable if *not* tracing stays
free: with the default :data:`~repro.obs.trace.NULL_TRACER`, every
instrumentation point must reduce to one attribute check and allocate
nothing.  This module measures that — ``Engine.run`` with tracing off
against an inline replica of the pre-instrumentation plan-execute loop —
and pins the allocation behavior of the no-op tracer.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.converter import convert
from repro.obs.events import NULL_EVENTS
from repro.obs.trace import NULL_TRACER, Tracer
from repro.ops import check_value
from repro.runtime import Engine
from repro.zoo import quicknet

#: tracing-off Engine.run must stay within this factor of the
#: pre-instrumentation baseline (ISSUE acceptance: 3%)
OVERHEAD_BUDGET = 1.03

#: timing rounds; the budget is checked on the best *paired* round so
#: clock drift between rounds cancels (see the test docstring)
ROUNDS = 11


def _baseline_execute(plan, inputs):
    """Replica of the pre-instrumentation ``CompiledPlan.execute`` hot
    loop: no tracer parameter, no enabled checks, no per-node timing —
    exactly the code this PR instrumented."""
    slots = [None] * plan.num_slots
    for slot, value in zip(plan.input_slots, inputs):
        check_value(value, plan.slot_specs[slot], plan.slot_names[slot])
        slots[slot] = value
    for cn in plan.nodes:
        ins = [slots[s] for s in cn.input_slots]
        out = cn.fn(ins)
        outs = out if isinstance(out, tuple) else (out,)
        for slot, v in zip(cn.output_slots, outs):
            check_value(v, plan.slot_specs[slot], plan.slot_names[slot])
            slots[slot] = v
        for s in cn.frees:
            slots[s] = None
    return tuple(slots[s] for s in plan.output_slots)


@pytest.fixture(scope="module")
def traced_setup():
    model = convert(quicknet("small", input_size=32), in_place=True)
    rng = np.random.default_rng(3)
    x = rng.standard_normal((1, 32, 32, 3)).astype(np.float32)
    return model, x


class TestDisabledOverhead:
    def test_engine_run_within_budget_of_baseline(self, traced_setup):
        """Tracing-off ``Engine.run`` vs the pre-instrumentation loop.

        Each round times the baseline and the engine back to back and
        takes the round's engine/baseline ratio; the budget is checked on
        the best round.  Pairing cancels the clock-frequency and cache
        drift that dominates absolute minima on shared machines — if the
        instrumentation really cost more than the budget, *every* round
        would exceed it.  The engine side carries everything the old
        engine also did (input normalization, per-node timing, stats
        counting) plus the new disabled-tracer and disabled-event-log
        checks; the budget bounds their sum.
        """
        model, x = traced_setup
        ratios = []
        with Engine(model) as engine:
            assert engine.tracer is NULL_TRACER  # default: tracing off
            plan = engine.plan(1)
            # Warm both paths: plan compile, weight cache, arenas.
            _baseline_execute(plan, (x,))
            engine.run(x)

            for _ in range(ROUNDS):
                t0 = time.perf_counter()
                _baseline_execute(plan, (x,))
                base_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                engine.run(x)
                engine_s = time.perf_counter() - t0
                ratios.append(engine_s / base_s)

        best = min(ratios)
        assert best <= OVERHEAD_BUDGET, (
            f"tracing-off Engine.run is {best:.3f}x the pre-instrumentation "
            f"baseline in its best paired round (budget {OVERHEAD_BUDGET}x); "
            f"all rounds: {[round(r, 3) for r in ratios]}"
        )

    def test_disabled_run_records_nothing(self, traced_setup):
        model, x = traced_setup
        with Engine(model) as engine:
            assert engine.events is NULL_EVENTS  # default: events off
            engine.run(x)
            engine.run_many([x, x])
        assert NULL_TRACER.spans() == []
        assert NULL_EVENTS.events() == []

    def test_null_events_is_inert_and_shared(self):
        """The no-op event log retains nothing, drops nothing, and the
        hot path's gate is a single attribute read."""
        assert NULL_EVENTS.enabled is False
        for i in range(1000):
            NULL_EVENTS.emit("engine.batch", i=i)
        assert NULL_EVENTS.events() == []
        assert NULL_EVENTS.dropped == 0

    def test_null_tracer_allocates_no_span_objects(self):
        """Every ``span()`` call on the no-op tracer returns the one
        shared instance — no garbage on the disabled hot path."""
        ids = {id(NULL_TRACER.span(f"s{i}")) for i in range(1000)}
        assert len(ids) == 1

    def test_enabled_tracing_is_bounded_overhead(self, traced_setup):
        """Sanity bound on the *enabled* side: tracing a run must not
        blow it up (generous 2x — it is instrumentation, not free)."""
        model, x = traced_setup
        with Engine(model) as engine:
            engine.run(x)  # warm untraced
            best_off = float("inf")
            for _ in range(ROUNDS):
                t0 = time.perf_counter()
                engine.run(x)
                best_off = min(best_off, time.perf_counter() - t0)

        tracer = Tracer()
        with Engine(model, trace=tracer) as engine:
            engine.run(x)  # warm traced
            best_on = float("inf")
            for _ in range(ROUNDS):
                t0 = time.perf_counter()
                engine.run(x)
                best_on = min(best_on, time.perf_counter() - t0)
        assert best_on <= best_off * 2.0, (
            f"enabled tracing {best_on * 1e3:.3f} ms vs "
            f"{best_off * 1e3:.3f} ms untraced"
        )
