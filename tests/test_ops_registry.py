"""The repro.ops registry: completeness, schema validation, Graph.validate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.graph.builder import GraphBuilder
from repro.graph.executor import Executor
from repro.graph.ir import Graph, GraphError, TensorSpec
from repro.ops import (
    COST_EXEMPT_OPS,
    OpContext,
    all_specs,
    compile_node,
    find_spec,
    get_spec,
    infer_output_specs,
    is_binary_op,
    mac_layer_ops,
    op_class_of,
    op_names,
)
from repro.ops.registry import OP_CLASSES
from repro.runtime import compile_plan


def _unknown_op_graph() -> Graph:
    g = Graph("mystery")
    x = g.add_input("x", TensorSpec((1, 4)))
    n = g.add_node("warp_drive", [x], [TensorSpec((1, 4))], name="engine_room")
    g.outputs = [n.outputs[0]]
    return g


def _toy_graph(rng) -> Graph:
    b = GraphBuilder((1, 6, 6, 3))
    w = rng.standard_normal((3, 3, 3, 8)).astype(np.float32)
    y = b.conv2d(b.input, w)
    return b.finish(b.relu(y))


class TestCompleteness:
    """Every registered op must carry the full contract."""

    def test_every_op_has_kernel_and_shape_hook(self):
        for spec in all_specs():
            assert callable(spec.kernel), spec.name
            assert callable(spec.infer), spec.name

    def test_every_op_has_cost_model_or_explicit_exemption(self):
        missing = [
            spec.name
            for spec in all_specs()
            if spec.cost is None and spec.name not in COST_EXEMPT_OPS
        ]
        assert not missing, f"ops without latency model or exemption: {missing}"

    def test_exemption_list_has_no_stale_entries(self):
        stale = [op for op in COST_EXEMPT_OPS if find_spec(op) is None]
        assert not stale

    def test_op_classes_are_the_known_buckets(self):
        for spec in all_specs():
            assert spec.op_class in OP_CLASSES, spec.name

    def test_binary_flag_matches_lce_prefix(self):
        for name in op_names():
            assert is_binary_op(name) == name.startswith("lce_"), name

    def test_mac_layers_anchor_figure5_stacks(self):
        assert mac_layer_ops() == ("conv2d", "dense", "depthwise_conv2d", "lce_bconv2d")


class TestLookups:
    def test_get_spec_unknown_op(self):
        with pytest.raises(GraphError, match="no kernel for op 'warp_drive'"):
            get_spec("warp_drive")

    def test_infer_unknown_op(self):
        with pytest.raises(GraphError, match="no shape inference"):
            infer_output_specs("warp_drive", [TensorSpec((1, 4))], {}, {})

    def test_op_class_default(self):
        assert op_class_of("warp_drive") == "All other full precision"
        assert op_class_of("lce_bconv2d") == "LceBConv2d"
        assert op_class_of("conv2d") == "Full precision Conv2D"
        assert op_class_of("add") == "Full precision Add"

    def test_compile_node_resolves_identical_kernels_for_both_runtimes(self, rng):
        """Executor and CompiledPlan must share the registry's kernel path."""
        g = _toy_graph(rng)
        x = rng.standard_normal((1, 6, 6, 3)).astype(np.float32)
        direct = [compile_node(n, OpContext()) for n in g.nodes]
        value = x
        for fn in direct:
            value = fn([value])
        via_executor = Executor(g).run(x)
        via_plan = compile_plan(g).execute([x])[0]
        np.testing.assert_array_equal(value, via_executor)
        np.testing.assert_array_equal(value, via_plan)


class TestGraphValidate:
    def test_unregistered_op_rejected_naming_the_node(self):
        g = _unknown_op_graph()
        with pytest.raises(GraphError, match="engine_room.*no kernel for op 'warp_drive'"):
            g.validate()

    def test_executor_construction_validates(self):
        with pytest.raises(GraphError, match="no kernel"):
            Executor(_unknown_op_graph())

    def test_plan_compilation_validates(self):
        with pytest.raises(GraphError, match="no kernel"):
            compile_plan(_unknown_op_graph())

    def test_convert_validates(self):
        from repro.converter import convert

        with pytest.raises(GraphError, match="no kernel"):
            convert(_unknown_op_graph())

    def test_save_model_validates(self, tmp_path):
        from repro.graph.serialization import save_model

        with pytest.raises(GraphError, match="no kernel"):
            save_model(_unknown_op_graph(), tmp_path / "bad.lce")

    def test_missing_required_attribute_rejected(self):
        g = Graph("badattrs")
        x = g.add_input("x", TensorSpec((1, 6, 6, 64), "bitpacked"))
        n = g.add_node(
            "lce_bconv2d",
            [x],
            [TensorSpec((1, 6, 6, 8))],
            attrs={"kernel_h": 3, "kernel_w": 3, "in_channels": 64},
            name="bconv",
        )
        g.outputs = [n.outputs[0]]
        with pytest.raises(
            GraphError, match="bconv.*missing required attribute 'out_channels'"
        ):
            g.validate()

    def test_malformed_attribute_rejected(self):
        g = Graph("badattrs")
        x = g.add_input("x", TensorSpec((1, 6, 6, 3)))
        n = g.add_node(
            "maxpool2d",
            [x],
            [TensorSpec((1, 3, 3, 3))],
            attrs={"pool_h": 2, "pool_w": "wide"},
            name="pool",
        )
        g.outputs = [n.outputs[0]]
        with pytest.raises(GraphError, match="pool.*malformed attribute 'pool_w'"):
            g.validate()

    def test_unknown_extra_attributes_are_tolerated(self, rng):
        """Passes attach auxiliary attrs (e.g. PTQ scales); schema ignores them."""
        g = _toy_graph(rng)
        g.nodes[0].attrs["debug_tag"] = "stem"
        g.validate()

    def test_validate_accepts_every_zoo_model_converted(self):
        from repro.converter import convert
        from repro.zoo import build_model

        model = convert(build_model("quicknet_small", input_size=64), in_place=True)
        model.graph.validate()


class TestCliOps:
    def test_ops_table_lists_every_registered_op(self, capsys):
        assert main(["ops"]) == 0
        out = capsys.readouterr().out
        for name in op_names():
            assert name in out
        assert f"{len(op_names())} ops registered" in out

    def test_ops_single_op_shows_schema_and_latency(self, capsys):
        assert main(["ops", "--op", "lce_bconv2d"]) == 0
        out = capsys.readouterr().out
        assert "kernel_h: int" in out
        assert "latency: modeled" in out
        assert "class:   LceBConv2d" in out

    def test_ops_unknown_op_fails(self, capsys):
        assert main(["ops", "--op", "warp_drive"]) == 2
