"""Tests for trace-fitted device profiles and the calibration stack.

Covers the artifact layer (schema, IO, diff), the fit itself (synthetic
recovery, degenerate fallbacks, real collect+fit round trips), the
bit-identity contract of the bundled ``default`` profile, profile-steered
plan compilation (scheduling changes, outputs do not), and the CLI
surface (``calibrate``, ``profiles``, ``--profile`` error handling).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.converter import convert
from repro.hw.calibrate import (
    CalibrationSample,
    _fit_class,
    collect_samples,
    fit_profile,
)
from repro.hw.device import (
    DeviceModel,
    DeviceProfile,
    PROFILE_SCHEMA,
    PROFILE_SCHEMA_VERSION,
    ProfileError,
    as_profile,
    diff_profiles,
    list_profiles,
    load_profile,
    save_profile,
    validate_profile,
)
from repro.ops import ParamCache, node_cost
from repro.runtime import Engine, compile_plan
from repro.zoo import quicknet


@pytest.fixture(scope="module")
def small_model():
    return convert(quicknet("small", input_size=32), in_place=True)


@pytest.fixture(scope="module")
def samples(small_model):
    # Cheap collection settings: the fit-quality budget is gated by
    # ``make calibrate-smoke``, not here; these tests assert structure
    # and consistency, which hold at any noise level.
    return collect_samples(
        models=("quicknet_small",), input_size=32, repeats=2
    )


@pytest.fixture(scope="module")
def calibrated(samples):
    return fit_profile(samples, input_size=32, repeats=2)


# ================================================================ fit math
class TestFitClass:
    def test_recovers_exact_affine_relation(self):
        work = np.array([1e-4, 2e-4, 5e-4, 1e-3])
        a, b = _fit_class(work, 2.5 * work + 3e-6)
        assert a == pytest.approx(2.5, rel=1e-6)
        assert b == pytest.approx(3e-6, rel=1e-6)

    def test_single_sample_collapses_to_constant(self):
        a, b = _fit_class(np.array([1e-4]), np.array([7e-5]))
        assert a == 0.0
        assert b == pytest.approx(7e-5)

    def test_no_work_spread_collapses_to_constant(self):
        measured = np.array([2e-5, 4e-5, 6e-5])
        a, b = _fit_class(np.full(3, 1e-4), measured)
        assert a == 0.0
        assert b == pytest.approx(float(np.median(measured)))

    def test_negative_intercept_falls_back_to_proportional(self):
        # measured = 3*work - c would fit with b < 0; the constrained
        # fallback must return b == 0 and a non-negative slope.
        work = np.array([1e-4, 2e-4, 4e-4])
        a, b = _fit_class(work, 3.0 * work - 5e-5)
        assert b == 0.0
        assert a >= 0.0

    def test_coefficients_are_never_negative(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            work = rng.uniform(1e-6, 1e-3, size=rng.integers(1, 6))
            measured = rng.uniform(-1e-4, 1e-3, size=work.size)
            a, b = _fit_class(work, measured)
            assert a >= 0.0 and b >= 0.0
            assert np.isfinite(a) and np.isfinite(b)


class TestFitProfile:
    def _synthetic(self):
        out = []
        for i, (op, op_class) in enumerate(
            [("conv2d", "Full precision Conv2D")] * 3
            + [("add", "Full precision Add")] * 3
        ):
            work = (i % 3 + 1) * 1e-4
            factor = 2.0 if op == "conv2d" else 0.5
            out.append(
                CalibrationSample(
                    model="m",
                    node=f"n{i}",
                    op=op,
                    op_class=op_class,
                    measured_s=factor * work + 1e-6,
                    work_s=work,
                )
            )
        return out

    def test_synthetic_fit_recovers_per_op_coefficients(self):
        profile = fit_profile(self._synthetic())
        assert profile.op_factors["conv2d"] == pytest.approx(2.0, rel=1e-5)
        assert profile.op_factors["add"] == pytest.approx(0.5, rel=1e-5)
        assert profile.op_overhead_s["conv2d"] == pytest.approx(1e-6, rel=1e-4)
        assert profile.fit.median_abs_pct_error == pytest.approx(0.0, abs=1e-6)

    def test_fit_covers_both_granularities(self, samples, calibrated):
        assert set(calibrated.op_factors) == {s.op for s in samples}
        assert set(calibrated.class_factors) == {s.op_class for s in samples}
        assert set(calibrated.op_overhead_s) == set(calibrated.op_factors)
        assert calibrated.is_calibrated

    def test_fit_report_provenance(self, samples, calibrated):
        fit = calibrated.fit
        assert fit.models == ("quicknet_small",)
        assert (fit.input_size, fit.repeats) == (32, 2)
        assert fit.samples == len(samples) == len(fit.residuals)
        assert 0 <= fit.median_abs_pct_error <= fit.max_abs_pct_error
        assert np.isfinite(fit.mean_abs_pct_error)

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError, match="zero samples"):
            fit_profile([])

    def test_collect_rejects_nonpositive_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            collect_samples(repeats=0)

    def test_samples_cover_every_costed_node(self, samples, small_model):
        # Every graph node with a cost hook must produce one sample.
        assert {s.node for s in samples} == {
            n.name for n in small_model.graph.nodes
        }


# ==================================================== pricing consistency
class TestPricingConsistency:
    def test_default_profile_is_bit_identical(self, small_model):
        device = DeviceModel.pixel1()
        profile = DeviceProfile.default(device)
        assert not profile.is_calibrated
        graph = small_model.graph
        for node in graph.nodes:
            ins = [graph.tensors[t] for t in node.inputs]
            outs = [graph.tensors[t] for t in node.outputs]
            raw = node_cost(device, node, ins, outs)
            via = node_cost(profile, node, ins, outs)
            assert raw == via

    def test_node_cost_matches_fit_predictions(self, calibrated, small_model):
        # The consistency chain that makes the calibrate-smoke gate
        # meaningful: pricing the workload's own graph against the fitted
        # profile reproduces the FitReport's predicted seconds exactly.
        graph = small_model.graph
        predicted = {r.node: r.predicted_s for r in calibrated.fit.residuals}
        for node in graph.nodes:
            ins = [graph.tensors[t] for t in node.inputs]
            outs = [graph.tensors[t] for t in node.outputs]
            cost = node_cost(calibrated, node, ins, outs)
            assert cost.total_s == pytest.approx(
                predicted[node.name], rel=1e-9
            )

    def test_op_keys_take_precedence_over_class_keys(self):
        profile = DeviceProfile(
            name="p",
            device=DeviceModel.pixel1(),
            class_factors={"Full precision Conv2D": 2.0},
            class_overhead_s={"Full precision Conv2D": 1e-6},
            op_factors={"conv2d": 5.0},
            op_overhead_s={"conv2d": 9e-6},
        )
        assert profile.factor("Full precision Conv2D", "conv2d") == 5.0
        assert profile.overhead_s("Full precision Conv2D", "conv2d") == 9e-6
        # An op without its own entry falls back to the class fit...
        assert profile.factor("Full precision Conv2D", "other") == 2.0
        assert profile.overhead_s("Full precision Conv2D", "other") == 1e-6
        # ...and an unseen class to the uncalibrated model.
        assert profile.factor("Full precision Add", "add") == 1.0
        assert profile.overhead_s("Full precision Add", "add") is None

    def test_as_profile_coercions(self):
        device = DeviceModel.rpi4b()
        profile = as_profile(device)
        assert profile.name == "default" and profile.device == device
        assert as_profile(profile) is profile
        with pytest.raises(TypeError):
            as_profile("rpi4b")


# =============================================================== artifacts
class TestArtifactIO:
    def test_save_load_round_trip(self, calibrated, tmp_path):
        path = save_profile(calibrated, tmp_path / "cal.json")
        loaded = load_profile(path)
        assert loaded == calibrated

    def test_list_profiles(self, calibrated, tmp_path):
        save_profile(calibrated, tmp_path / "cal.json")
        save_profile(DeviceProfile.default(), tmp_path / "def.json")
        (tmp_path / "other.json").write_text('{"schema": "not-a-profile"}')
        rows = {r["name"]: r for r in list_profiles(tmp_path)}
        assert set(rows) == {"calibrated", "default"}
        assert rows["calibrated"]["calibrated"] is True
        assert rows["default"]["calibrated"] is False
        assert rows["calibrated"]["samples"] == calibrated.fit.samples

    def test_list_reports_invalid_profiles(self, tmp_path):
        broken = DeviceProfile.default().to_json()
        del broken["device"]["freq_hz"]
        (tmp_path / "broken.json").write_text(json.dumps(broken))
        rows = list_profiles(tmp_path)
        assert len(rows) == 1 and "problems" in rows[0]

    def test_diff_profiles(self, calibrated):
        default = DeviceProfile.default()
        diffs = diff_profiles(default, calibrated)
        assert diffs["name"] == ("default", "calibrated")
        assert any(k.startswith("op_factors.") for k in diffs)
        assert diff_profiles(calibrated, calibrated) == {}

    def test_load_missing_file_raises_profile_error(self, tmp_path):
        with pytest.raises(ProfileError, match="cannot read"):
            load_profile(tmp_path / "nope.json")

    def test_load_invalid_json_raises_profile_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ProfileError, match="not valid JSON"):
            load_profile(path)

    def test_validate_profile_problems(self):
        good = DeviceProfile.default().to_json()
        assert validate_profile(good) == []
        assert validate_profile([]) != []

        bad = dict(good, schema="wrong")
        assert any("schema" in p for p in validate_profile(bad))

        bad = dict(good, schema_version=PROFILE_SCHEMA_VERSION + 1)
        assert any("newer" in p for p in validate_profile(bad))

        bad = dict(good, op_factors={"conv2d": -1.0})
        assert any(">= 0" in p for p in validate_profile(bad))

        bad = dict(good, class_factors={"c": "fast"})
        assert any("number" in p for p in validate_profile(bad))

        bad = dict(good, device=dict(good["device"]))
        del bad["device"]["l2_bytes"]
        assert any("missing" in p for p in validate_profile(bad))

        assert good["schema"] == PROFILE_SCHEMA  # sanity on the constant


# ============================================== profile-steered scheduling
class TestSteeredCompilation:
    def test_parity_is_bit_exact(self, calibrated, small_model):
        graph = small_model.graph
        x = np.random.default_rng(3).standard_normal(
            (2, 32, 32, 3)
        ).astype(np.float32)
        cache = ParamCache()
        plain = compile_plan(graph, batch_factor=2, num_threads=2, cache=cache)
        steered = compile_plan(
            graph,
            batch_factor=2,
            num_threads=2,
            cache=cache,
            profile=calibrated,
        )
        ref = plain.execute([x])
        out = steered.execute([x])
        assert len(ref) == len(out)
        for a, b in zip(ref, out):
            assert np.array_equal(np.asarray(a), np.asarray(b))

    def test_schedule_recorded_only_when_steered(self, calibrated, small_model):
        graph = small_model.graph
        plain = compile_plan(graph, batch_factor=2, num_threads=2)
        steered = compile_plan(
            graph, batch_factor=2, num_threads=2, profile=calibrated
        )
        assert plain.schedule == () and plain.profile_id is None
        assert len(steered.schedule) == len(graph.nodes)
        assert steered.profile_id == calibrated.name
        for decision in steered.schedule:
            assert decision.num_threads >= 1
            assert decision.predicted_s > 0 and decision.default_s > 0

    def test_engine_stats_report_profile(self, calibrated, small_model):
        x = np.random.default_rng(3).standard_normal(
            (1, 32, 32, 3)
        ).astype(np.float32)
        with Engine(small_model, profile=calibrated) as engine:
            engine.run(x)
            stats = engine.stats()
        assert stats.profile_id == calibrated.name
        assert stats.scheduled_nodes == len(small_model.graph.nodes)

        with Engine(small_model) as engine:
            engine.run(x)
            assert engine.stats().profile_id == "default"


# ===================================================================== CLI
class TestCalibrateCLI:
    def test_calibrate_writes_valid_artifact(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        assert cli_main([
            "calibrate", "--models", "quicknet_small",
            "--input-size", "32", "--repeats", "2", "--out", str(out),
        ]) == 0
        profile = load_profile(out)  # schema-validates on load
        assert profile.is_calibrated
        assert "|error| median" in capsys.readouterr().out

    def test_calibrate_budget_exceeded_fails(self, tmp_path, capsys):
        # An impossible budget must fail the gate with exit code 1 (the
        # contract ``make calibrate-smoke`` relies on).
        assert cli_main([
            "calibrate", "--models", "quicknet_small",
            "--input-size", "32", "--repeats", "2",
            "--budget", "1e-9", "--out", str(tmp_path / "p.json"),
        ]) == 1
        assert "exceeds budget" in capsys.readouterr().err

    def test_calibrate_rejects_bad_repeats(self, tmp_path):
        assert cli_main([
            "calibrate", "--repeats", "0", "--out", str(tmp_path / "p.json"),
        ]) == 2

    def test_profiles_list_show_diff(self, calibrated, tmp_path, capsys):
        save_profile(calibrated, tmp_path / "cal.json")
        save_profile(DeviceProfile.default(), tmp_path / "def.json")

        assert cli_main(["profiles", "list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "calibrated" in out and "default" in out

        assert cli_main(["profiles", "show", str(tmp_path / "cal.json")]) == 0
        assert "pixel1" in capsys.readouterr().out

        assert cli_main([
            "profiles", "diff",
            str(tmp_path / "cal.json"), str(tmp_path / "def.json"),
        ]) == 0
        assert "->" in capsys.readouterr().out

    def test_profiles_show_invalid_path_exits_2(self, tmp_path, capsys):
        assert cli_main([
            "profiles", "show", str(tmp_path / "missing.json")
        ]) == 2
        assert "profiles show:" in capsys.readouterr().err

    def test_benchmark_invalid_profile_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "wrong"}')
        assert cli_main([
            "benchmark", "--model", "quicknet_small", "--input-size", "32",
            "--profile", str(bad),
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("benchmark:") and "schema" in err

    def test_profile_missing_profile_exits_2(self, tmp_path, capsys):
        assert cli_main([
            "profile", "--model", "quicknet_small", "--input-size", "32",
            "--profile", str(tmp_path / "missing.json"),
        ]) == 2
        assert capsys.readouterr().err.startswith("profile:")

    def test_benchmark_with_profile_prices_against_it(
        self, calibrated, tmp_path, capsys
    ):
        path = save_profile(calibrated, tmp_path / "cal.json")
        assert cli_main([
            "benchmark", "--model", "quicknet_small", "--input-size", "32",
            "--profile", str(path),
        ]) == 0
        assert "profile 'calibrated'" in capsys.readouterr().out
