"""Tests for the individual converter passes.

Each pass is tested structurally (the rewrite happened) and numerically
(executor output unchanged) — the converter's contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import Activation, Padding
from repro.graph.builder import GraphBuilder
from repro.graph.executor import Executor
from repro.graph.ir import Graph, TensorSpec
from repro.graph.passes import (
    PassManager,
    binarize_convs,
    bitpacked_chain,
    bmaxpool_swap,
    canonicalize,
    dce,
    dedupe_quantize,
    fuse_activation,
    fuse_batchnorm,
)
from repro.kernels.batchnorm import BatchNormParams


def _rand_bn(rng, c):
    return BatchNormParams(
        gamma=rng.uniform(0.5, 1.5, c).astype(np.float32),
        beta=rng.standard_normal(c).astype(np.float32),
        mean=rng.standard_normal(c).astype(np.float32),
        variance=rng.uniform(0.2, 1.5, c).astype(np.float32),
    )


def _assert_equivalent(graph_before: Graph, graph_after: Graph, rng, atol=1e-4):
    spec = graph_before.tensors[graph_before.inputs[0]]
    x = rng.standard_normal(spec.shape).astype(np.float32)
    before = Executor(graph_before).run(x)
    after = Executor(graph_after).run(x)
    np.testing.assert_allclose(after, before, rtol=1e-4, atol=atol)


def _copy(graph: Graph) -> Graph:
    import copy

    return copy.deepcopy(graph)


class TestCanonicalize:
    def test_removes_noop_reshape(self, rng):
        b = GraphBuilder((1, 2, 2, 4))
        x = b.reshape(b.input, (1, 2, 2, 4))
        x = b.relu(x)
        g = b.finish(x)
        assert canonicalize(g)
        g.verify()
        assert not g.ops_by_type("reshape")

    def test_keeps_real_reshape(self, rng):
        b = GraphBuilder((1, 2, 2, 4))
        x = b.reshape(b.input, (1, 16))
        g = b.finish(x)
        assert not canonicalize(g)
        assert g.ops_by_type("reshape")


class TestBinarizeConvs:
    def _graph(self, rng, padding=Padding.SAME_ONE):
        b = GraphBuilder((1, 6, 6, 8))
        h = b.binarize(b.input)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 4)).astype(np.float32),
            padding=padding, binary_weights=True,
        )
        return b.finish(h)

    def test_rewrites_pattern(self, rng):
        g = self._graph(rng)
        before = _copy(g)
        assert binarize_convs(g)
        dce(g)
        g.verify()
        assert len(g.ops_by_type("lce_bconv2d")) == 1
        assert len(g.ops_by_type("lce_quantize")) == 1
        assert not g.ops_by_type("conv2d")
        assert not g.ops_by_type("binarize")
        _assert_equivalent(before, g, rng)

    def test_packs_weights_32x(self, rng):
        g = self._graph(rng)
        float_bytes = g.ops_by_type("conv2d")[0].params["weights"].nbytes
        binarize_convs(g)
        packed_bytes = g.ops_by_type("lce_bconv2d")[0].params["filter_bits"].nbytes
        # 8 input channels pad to one 64-bit word: 8x here, 32x at >=64ch.
        assert packed_bytes < float_bytes

    def test_zero_padding_gets_correction(self, rng):
        g = self._graph(rng, padding=Padding.SAME_ZERO)
        before = _copy(g)
        binarize_convs(g)
        dce(g)
        node = g.ops_by_type("lce_bconv2d")[0]
        assert "padding_correction" in node.params
        _assert_equivalent(before, g, rng)

    def test_leaves_float_convs_alone(self, rng):
        b = GraphBuilder((1, 6, 6, 8))
        h = b.conv2d(b.input, rng.standard_normal((3, 3, 8, 4)).astype(np.float32))
        g = b.finish(h)
        assert not binarize_convs(g)

    def test_leaves_unbinarized_input_alone(self, rng):
        # binary weights but no preceding binarize op: stays emulated.
        b = GraphBuilder((1, 6, 6, 8))
        h = b.conv2d(
            b.input, rng.standard_normal((3, 3, 8, 4)).astype(np.float32),
            binary_weights=True,
        )
        g = b.finish(h)
        assert not binarize_convs(g)


class TestFuseActivation:
    def test_fuses_relu_into_float_conv(self, rng):
        b = GraphBuilder((1, 6, 6, 3))
        h = b.conv2d(b.input, rng.standard_normal((3, 3, 3, 4)).astype(np.float32))
        h = b.relu(h)
        g = b.finish(h)
        before = _copy(g)
        assert fuse_activation(g)
        assert not g.ops_by_type("relu")
        assert Activation(g.ops_by_type("conv2d")[0].attrs["activation"]) is Activation.RELU
        _assert_equivalent(before, g, rng)

    def test_no_fuse_when_relu_has_other_consumer(self, rng):
        b = GraphBuilder((1, 6, 6, 3))
        h = b.conv2d(b.input, rng.standard_normal((3, 3, 3, 4)).astype(np.float32))
        r = b.relu(h)
        out = b.add(h, r)  # conv output used twice
        g = b.finish(out)
        assert not fuse_activation(g)

    def test_no_fuse_into_already_activated(self, rng):
        b = GraphBuilder((1, 6, 6, 3))
        h = b.conv2d(
            b.input, rng.standard_normal((3, 3, 3, 4)).astype(np.float32),
            activation=Activation.RELU6,
        )
        h = b.relu(h)
        g = b.finish(h)
        assert not fuse_activation(g)

    def test_no_fuse_when_output_is_graph_output(self, rng):
        b = GraphBuilder((1, 6, 6, 3))
        h = b.conv2d(b.input, rng.standard_normal((3, 3, 3, 4)).astype(np.float32))
        r = b.relu(h)
        g = b.finish(h, r)  # conv output itself is a graph output
        assert not fuse_activation(g)


class TestFuseBatchnorm:
    def test_folds_into_float_conv(self, rng):
        b = GraphBuilder((1, 6, 6, 3))
        h = b.conv2d(b.input, rng.standard_normal((3, 3, 3, 4)).astype(np.float32))
        h = b.batch_norm(h, _rand_bn(rng, 4))
        g = b.finish(h)
        before = _copy(g)
        assert fuse_batchnorm(g)
        assert not g.ops_by_type("batch_norm")
        _assert_equivalent(before, g, rng)

    def test_folds_into_dense(self, rng):
        b = GraphBuilder((1, 8))
        h = b.dense(b.input, rng.standard_normal((8, 4)).astype(np.float32))
        h = b.batch_norm(h, _rand_bn(rng, 4))
        g = b.finish(h)
        before = _copy(g)
        assert fuse_batchnorm(g)
        _assert_equivalent(before, g, rng)

    def test_folds_into_depthwise(self, rng):
        b = GraphBuilder((1, 6, 6, 4))
        h = b.depthwise_conv2d(b.input, rng.standard_normal((3, 3, 4)).astype(np.float32))
        h = b.batch_norm(h, _rand_bn(rng, 4))
        g = b.finish(h)
        before = _copy(g)
        assert fuse_batchnorm(g)
        _assert_equivalent(before, g, rng)

    def test_does_not_fold_through_activation(self, rng):
        b = GraphBuilder((1, 6, 6, 3))
        h = b.conv2d(
            b.input, rng.standard_normal((3, 3, 3, 4)).astype(np.float32),
            activation=Activation.RELU,
        )
        h = b.batch_norm(h, _rand_bn(rng, 4))
        g = b.finish(h)
        assert not fuse_batchnorm(g)

    def _bconv_graph(self, rng, with_relu_before_bn: bool):
        b = GraphBuilder((1, 6, 6, 8))
        h = b.binarize(b.input)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 4)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        if with_relu_before_bn:
            h = b.relu(h)
        h = b.batch_norm(h, _rand_bn(rng, 4))
        return b.finish(h)

    def test_bconv_bn_becomes_multiplier(self, rng):
        g = self._bconv_graph(rng, with_relu_before_bn=False)
        before = _copy(g)
        binarize_convs(g)
        assert fuse_batchnorm(g)
        dce(g)
        node = g.ops_by_type("lce_bconv2d")[0]
        assert "multiplier" in node.params and "bias" in node.params
        _assert_equivalent(before, g, rng)

    def test_bconv_relu_bn_records_order(self, rng):
        """QuickNet's conv -> ReLU -> BN fuses with the scale after the act."""
        g = self._bconv_graph(rng, with_relu_before_bn=True)
        before = _copy(g)
        binarize_convs(g)
        fuse_activation(g)
        assert fuse_batchnorm(g)
        dce(g)
        node = g.ops_by_type("lce_bconv2d")[0]
        assert node.attrs["scale_before_activation"] is False
        _assert_equivalent(before, g, rng)

    def test_consecutive_bns_compose(self, rng):
        g = self._bconv_graph(rng, with_relu_before_bn=False)
        # append a second BN
        last = g.outputs[0]
        n = g.add_node(
            "batch_norm", [last], [TensorSpec(g.tensors[last].shape)],
            params={"bn": _rand_bn(rng, 4)},
        )
        g.outputs = [n.outputs[0]]
        before = _copy(g)
        binarize_convs(g)
        fuse_batchnorm(g)
        fuse_batchnorm(g)
        dce(g)
        assert not g.ops_by_type("batch_norm")
        _assert_equivalent(before, g, rng, atol=1e-3)


class TestBMaxPoolSwap:
    def test_swaps(self, rng):
        b = GraphBuilder((1, 8, 8, 8))
        p = b.maxpool2d(b.input, 2, 2)
        h = b.binarize(p)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 4)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        g = b.finish(h)
        before = _copy(g)
        binarize_convs(g)
        dce(g)  # drop the dead emulation binarize so the pool has one consumer
        assert bmaxpool_swap(g)
        dce(g)
        g.verify()
        assert g.ops_by_type("lce_bmaxpool2d")
        assert not g.ops_by_type("maxpool2d")
        _assert_equivalent(before, g, rng)

    def test_no_swap_when_pool_output_also_used_in_float(self, rng):
        b = GraphBuilder((1, 8, 8, 8))
        p = b.maxpool2d(b.input, 2, 2)
        h = b.binarize(p)
        h = b.conv2d(
            h, rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32),
            padding=Padding.SAME_ONE, binary_weights=True,
        )
        out = b.add(h, p)  # float use of the pooled tensor
        g = b.finish(out)
        binarize_convs(g)
        dce(g)
        assert not bmaxpool_swap(g)


class TestDedupeQuantize:
    def test_merges(self, rng):
        b = GraphBuilder((1, 6, 6, 8))
        h = b.binarize(b.input)
        w = rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32)
        c1 = b.conv2d(h, w, padding=Padding.SAME_ONE, binary_weights=True)
        c2 = b.conv2d(h, w, padding=Padding.SAME_ONE, binary_weights=True)
        out = b.add(c1, c2)
        g = b.finish(out)
        before = _copy(g)
        binarize_convs(g)
        assert len(g.ops_by_type("lce_quantize")) == 2
        assert dedupe_quantize(g)
        dce(g)
        assert len(g.ops_by_type("lce_quantize")) == 1
        _assert_equivalent(before, g, rng)


class TestBitpackedChain:
    def _chain(self, rng):
        b = GraphBuilder((1, 6, 6, 8))
        h = b.binarize(b.input)
        w1 = rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32)
        h = b.conv2d(h, w1, padding=Padding.SAME_ONE, binary_weights=True)
        h = b.batch_norm(h, _rand_bn(rng, 8))
        h = b.binarize(h)
        w2 = rng.choice([-1.0, 1.0], (3, 3, 8, 4)).astype(np.float32)
        h = b.conv2d(h, w2, padding=Padding.SAME_ONE, binary_weights=True)
        return b.finish(h)

    def test_first_conv_writes_bitpacked(self, rng):
        g = self._chain(rng)
        before = _copy(g)
        binarize_convs(g)
        dce(g)  # drop dead emulation binarize nodes
        fuse_batchnorm(g)
        assert bitpacked_chain(g)
        dce(g)
        g.verify()
        convs = g.ops_by_type("lce_bconv2d")
        assert convs[0].attrs["output_type"] == "bitpacked"
        assert "threshold" in convs[0].params
        assert "multiplier" not in convs[0].params
        assert len(g.ops_by_type("lce_quantize")) == 1  # only the input one
        _assert_equivalent(before, g, rng)

    def test_residual_blocks_chain(self, rng):
        """A shortcut consumer keeps the intermediate in float."""
        b = GraphBuilder((1, 6, 6, 8))
        h0 = b.binarize(b.input)
        w = rng.choice([-1.0, 1.0], (3, 3, 8, 8)).astype(np.float32)
        h = b.conv2d(h0, w, padding=Padding.SAME_ONE, binary_weights=True)
        h2 = b.binarize(h)
        h2 = b.conv2d(h2, w, padding=Padding.SAME_ONE, binary_weights=True)
        out = b.add(h2, h)  # h feeds both the next conv and a shortcut
        g = b.finish(out)
        binarize_convs(g)
        dce(g)
        assert not bitpacked_chain(g)


class TestDCE:
    def test_removes_dead_chain(self, rng):
        b = GraphBuilder((1, 4, 4, 4))
        live = b.relu(b.input)
        dead = b.relu(b.input)
        dead = b.relu(dead)
        g = b.finish(live)
        assert dce(g)
        assert len(g) == 1

    def test_keeps_outputs(self, rng):
        b = GraphBuilder((1, 4, 4, 4))
        x = b.relu(b.input)
        g = b.finish(x)
        assert not dce(g)


class TestPassManager:
    def test_runs_to_fixpoint(self, rng):
        b = GraphBuilder((1, 4, 4, 4))
        x = b.relu(b.input)
        g = b.finish(x)
        pm = PassManager()
        pm.add("dce", dce)
        counts = pm.run(g)
        assert counts == {"dce": 0}

    def test_reports_changes(self, rng):
        b = GraphBuilder((1, 4, 4, 4))
        live = b.relu(b.input)
        b.relu(b.input)  # dead
        g = b.finish(live)
        pm = PassManager().add("dce", dce)
        assert pm.run(g)["dce"] == 1

    def test_non_convergent_pipeline_raises(self):
        b = GraphBuilder((1, 4))
        g = b.finish(b.relu(b.input))

        def flip_flop(graph):
            return True  # always claims to change something

        pm = PassManager(max_iterations=3).add("bad", flip_flop)
        with pytest.raises(RuntimeError, match="converge"):
            pm.run(g)
