"""Runtime lock-sanitizer tests: OrderedLock, LockGraph, the factories.

Each sanitized-mode test builds :class:`OrderedLock` directly with an
isolated :class:`LockGraph` — the class always checks, regardless of
``REPRO_SANITIZE`` — so these tests are deterministic in both plain and
``make sanitize`` runs.  Factory mode switching is pinned via
``monkeypatch.setenv``; the deadlock fixture runs its two threads
*sequentially* (each ordering completes, no timing races) and relies on
the graph's cycle detector, which is exactly the signal
:func:`check_teardown` gates the suite on.
"""

from __future__ import annotations

import threading

import pytest

from repro.concurrency import (
    SANITIZE_ENV,
    LOCK_RANKS,
    LockCycleError,
    LockGraph,
    LockOrderError,
    OrderedLock,
    UnknownLockError,
    ordered_lock,
    ordered_rlock,
    rank_of,
    sanitizer_enabled,
)


# ----------------------------------------------------------- the rank table


def test_rank_table_is_a_strict_hierarchy_per_name():
    ranks = [entry.rank for entry in LOCK_RANKS.values()]
    assert len(set(LOCK_RANKS)) == len(ranks)
    assert all(isinstance(r, int) for r in ranks)
    # Exactly one reentrant entry: the metrics leaf (counters are bumped
    # from under every other lock, including from metrics callbacks).
    reentrant = [n for n, e in LOCK_RANKS.items() if e.reentrant]
    assert reentrant == ["obs.metrics"]


def test_rank_of_unknown_name_raises():
    with pytest.raises(UnknownLockError, match="no.such.lock"):
        rank_of("no.such.lock")


# ------------------------------------------------------------- the factories


def test_factories_are_bare_primitives_when_disabled(monkeypatch):
    monkeypatch.delenv(SANITIZE_ENV, raising=False)
    assert not sanitizer_enabled()
    # The ≤1.05x overhead contract: with the sanitizer off the factory
    # returns the raw threading primitive itself, not a wrapper.
    assert type(ordered_lock("obs.trace")) is type(threading.Lock())
    assert type(ordered_rlock("obs.metrics")) is type(threading.RLock())

    monkeypatch.setenv(SANITIZE_ENV, "0")
    assert not sanitizer_enabled()
    assert type(ordered_lock("obs.trace")) is type(threading.Lock())


def test_factories_return_ordered_locks_when_enabled(monkeypatch):
    monkeypatch.setenv(SANITIZE_ENV, "1")
    assert sanitizer_enabled()
    lock = ordered_lock("runtime.engine.plan")
    assert isinstance(lock, OrderedLock)
    assert lock.rank == rank_of("runtime.engine.plan").rank
    rlock = ordered_rlock("obs.metrics")
    assert isinstance(rlock, OrderedLock)
    assert rlock.reentrant


def test_factories_validate_names_in_both_modes(monkeypatch):
    for value in ("", "1"):
        monkeypatch.setenv(SANITIZE_ENV, value)
        with pytest.raises(UnknownLockError):
            ordered_lock("not.registered")


def test_ordered_rlock_rejects_non_reentrant_names(monkeypatch):
    # Table says obs.trace is non-reentrant; asking for an RLock there is
    # a registration bug in either mode.
    for value in ("", "1"):
        monkeypatch.setenv(SANITIZE_ENV, value)
        with pytest.raises(ValueError, match="registered non-reentrant"):
            ordered_rlock("obs.trace")


# ------------------------------------------------------ ordering enforcement


def _pair(graph):
    """An (outer, inner) pair from the real table, rank 50 < rank 90."""
    return (
        OrderedLock("runtime.engine.plan", graph=graph),
        OrderedLock("obs.metrics", graph=graph),
    )


def test_correct_order_records_an_edge():
    g = LockGraph()
    plan, metrics = _pair(g)
    with plan:
        assert g.lockset() == ("runtime.engine.plan",)
        with metrics:
            assert g.lockset() == ("runtime.engine.plan", "obs.metrics")
    assert g.lockset() == ()
    assert g.edges() == {"runtime.engine.plan": ("obs.metrics",)}
    g.check()  # two-node DAG: no cycle


def test_rank_inversion_raises_before_blocking():
    g = LockGraph()
    plan, metrics = _pair(g)
    with metrics:
        with pytest.raises(LockOrderError) as exc_info:
            plan.acquire()
    err = exc_info.value
    assert err.acquiring == "runtime.engine.plan"
    assert err.held == ("obs.metrics",)
    assert "rank inversion" in str(err)
    # The attempt never reached the inner lock: it is still free.
    assert not plan.locked()
    assert g.lockset() == ()


def test_non_reentrant_self_reacquire_raises():
    g = LockGraph()
    lock = OrderedLock("obs.trace", graph=g)
    with lock:
        with pytest.raises(LockOrderError, match="self-deadlock"):
            lock.acquire()
        # The non-blocking probe (Condition._is_owned style) is fine: no
        # raise, and the held inner lock just reports failure.
        assert lock.acquire(blocking=False) is False
    assert g.lockset() == ()


def test_reentrant_lock_reenters():
    g = LockGraph()
    metrics = OrderedLock("obs.metrics", graph=g)
    with metrics:
        with metrics:
            assert g.lockset() == ("obs.metrics", "obs.metrics")
    assert g.lockset() == ()


def test_release_of_unheld_lock_raises():
    g = LockGraph()
    lock = OrderedLock("obs.trace", graph=g)
    lock._inner.acquire()  # bypass the shim so only the graph is out of sync
    with pytest.raises(RuntimeError, match="does not hold"):
        lock.release()


def test_locksets_are_per_thread():
    g = LockGraph()
    plan, metrics = _pair(g)
    seen = {}

    def worker():
        with metrics:
            seen["worker"] = g.lockset()

    with plan:
        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["worker"] == ("obs.metrics",)
        assert g.lockset() == ("runtime.engine.plan",)
    # Disjoint threads: no plan -> metrics edge was ever attempted.
    assert g.edges() == {}


# ------------------------------------------------------------ cycle detection


def test_two_thread_deadlock_fixture_is_caught():
    """The canonical AB/BA deadlock, made deterministic.

    Two equal-rank locks (rank checking is silent for peers) acquired in
    opposite orders by two threads.  Run sequentially so both orderings
    complete — the *graph* still records a -> b and b -> a, and the
    teardown check must flag the cycle.
    """
    g = LockGraph()
    a = OrderedLock("t.a", rank=50, graph=g)
    b = OrderedLock("t.b", rank=50, graph=g)

    def t1():
        with a:
            with b:
                pass

    def t2():
        with b:
            with a:
                pass

    for target in (t1, t2):
        thread = threading.Thread(target=target)
        thread.start()
        thread.join()

    assert g.edges() == {"t.a": ("t.b",), "t.b": ("t.a",)}
    with pytest.raises(LockCycleError) as exc_info:
        g.check()
    assert [sorted(c) for c in exc_info.value.cycles] == [["t.a", "t.b"]]


def test_consistent_order_fixture_is_clean():
    g = LockGraph()
    a = OrderedLock("t.a", rank=50, graph=g)
    b = OrderedLock("t.b", rank=50, graph=g)

    def worker():
        with a:
            with b:
                pass

    for _ in range(2):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()

    assert g.edges() == {"t.a": ("t.b",)}
    g.check()


def test_three_lock_cycle_through_distinct_pairs():
    g = LockGraph()
    locks = {n: OrderedLock(f"t.{n}", rank=50, graph=g) for n in "abc"}

    def grab(first, second):
        with locks[first]:
            with locks[second]:
                pass

    for pair in (("a", "b"), ("b", "c"), ("c", "a")):
        thread = threading.Thread(target=grab, args=pair)
        thread.start()
        thread.join()

    with pytest.raises(LockCycleError):
        g.check()
    g.reset()
    assert g.edges() == {}
    g.check()


# --------------------------------------------------- Condition integration


def test_condition_over_ordered_lock_waits_and_notifies():
    g = LockGraph()
    lock = OrderedLock("serving.server", graph=g)
    cond = threading.Condition(lock)
    state = {"ready": False, "observed": None}

    def waiter():
        with cond:
            while not state["ready"]:
                cond.wait(timeout=5.0)
            # Reacquired after wait: the lockset must know.
            state["observed"] = g.lockset()

    t = threading.Thread(target=waiter)
    t.start()
    with cond:
        state["ready"] = True
        cond.notify_all()
    t.join(5.0)
    assert not t.is_alive()
    assert state["observed"] == ("serving.server",)
    assert g.lockset() == ()
    g.check()


def test_condition_wait_releases_the_sanitized_lockset():
    g = LockGraph()
    lock = OrderedLock("serving.server", graph=g)
    cond = threading.Condition(lock)
    released = {}

    def prober():
        # While the waiter is parked the lock must be genuinely free.
        released["acquired"] = lock.acquire(blocking=False)
        if released["acquired"]:
            lock.release()
        with cond:
            cond.notify_all()

    def waiter():
        with cond:
            cond.wait(timeout=5.0)

    t = threading.Thread(target=waiter)
    t.start()
    # Spin briefly until the waiter parks and releases the lock.
    for _ in range(1000):
        if not lock.locked():
            break
        threading.Event().wait(0.001)
    prober()
    t.join(5.0)
    assert not t.is_alive()


def test_condition_over_reentrant_ordered_lock_is_rejected():
    g = LockGraph()
    metrics = OrderedLock("obs.metrics", graph=g)
    cond = threading.Condition(metrics)
    with cond:
        with pytest.raises(NotImplementedError, match="reentrant"):
            cond.wait(timeout=0.01)
