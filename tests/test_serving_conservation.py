"""Conservation under concurrent load: nothing lost, nothing invented.

Seeded submitter threads hammer a two-model gateway with mixed batch
factors and a deliberately tiny queue (so shedding happens).  The
properties checked afterwards:

- **request conservation** — ``accepted + shed == submitted`` and every
  future resolved exactly once (a reply per accepted request, a typed
  ``Rejected`` per shed one);
- **bit identity** — every served reply equals the reference-executor
  output for its (model, factor) input, i.e. gateway batching never
  mixes, reorders or perturbs values inside a batch;
- **metric consistency** — the stats snapshot agrees with the replies
  the clients actually saw, batch-size mass equals completed factors,
  and the latency percentiles are monotone;
- **telemetry conservation** — the attached event log records the same
  story: zero ring-buffer drops (``obs.events.dropped`` /
  ``obs.trace.dropped`` gauges), a schema-valid stream, and exactly one
  terminal event per request.

The gateway runs on a FakeClock with ``deadline_ms=0`` (flush as soon as
the batcher sees work), so no timed wait is ever armed and the whole
stress run is event-driven — zero wall-clock sleeps, any thread
interleaving, same invariants.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from fake_clock import FakeClock
from test_runtime_parity import (
    _batched_input,
    _binary_net,
    _bmaxpool_net,
    assert_bit_identical,
    reference_outputs,
)

from repro.analysis import validate_events
from repro.core.types import Padding
from repro.obs import EventLog, events_to_records
from repro.serving import SHED_QUEUE_FULL, Gateway, GatewayConfig, Rejected

pytestmark = pytest.mark.serving

RESULT_TIMEOUT_S = 30.0
THREADS = 4
PER_THREAD = 25
FACTORS = (1, 2)


def _gateway_under_stress(rng, seed):
    graphs = {"bin": _binary_net(rng, Padding.SAME_ONE), "pool": _bmaxpool_net(rng)}
    # One fixed input per (model, factor): replies are comparable against
    # precomputed references no matter which thread submitted them.
    inputs = {
        (name, factor): _batched_input(graph, factor, rng)
        for name, graph in graphs.items()
        for factor in FACTORS
    }
    references = {
        key: reference_outputs(graphs[key[0]], (value,), key[1])
        for key, value in inputs.items()
    }
    config = GatewayConfig(
        max_batch=4,
        deadline_ms=0.0,  # flush immediately: no timed waits, no advance()
        max_queue=5,  # tiny on purpose: overload must shed, not queue
        replicas=2,
        scheduler="least_loaded",
    )
    gateway = Gateway(graphs, config, clock=FakeClock(), events=EventLog())
    return gateway, inputs, references


@pytest.mark.parametrize(
    "seed",
    [0, pytest.param(1, marks=pytest.mark.slow), pytest.param(2, marks=pytest.mark.slow)],
)
def test_conservation_under_concurrent_load(rng, seed):
    gateway, inputs, references = _gateway_under_stress(rng, seed)
    keys = sorted(inputs)
    barrier = threading.Barrier(THREADS)
    submissions: list[list[tuple[tuple[str, int], object]]] = [
        [] for _ in range(THREADS)
    ]
    errors: list[BaseException] = []

    def submitter(tid: int) -> None:
        thread_rng = np.random.default_rng(1000 * (seed + 1) + tid)
        try:
            barrier.wait(RESULT_TIMEOUT_S)
            for _ in range(PER_THREAD):
                key = keys[int(thread_rng.integers(len(keys)))]
                future = gateway.submit(key[0], inputs[key])
                submissions[tid].append((key, future))
        except BaseException as exc:  # pragma: no cover - diagnostic path
            errors.append(exc)

    threads = [
        threading.Thread(target=submitter, args=(tid,), daemon=True)
        for tid in range(THREADS)
    ]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join(RESULT_TIMEOUT_S)
        assert not errors
        assert all(not t.is_alive() for t in threads)

        flat = [pair for per_thread in submissions for pair in per_thread]
        assert len(flat) == THREADS * PER_THREAD

        served = shed = 0
        for key, future in flat:
            reply = future.result(RESULT_TIMEOUT_S)  # exactly one reply each
            if isinstance(reply, Rejected):
                # The only legal shed reason here: the pool is healthy and
                # the gateway is open, so overload is the only cause.
                assert reply.reason == SHED_QUEUE_FULL
                shed += 1
            else:
                assert_bit_identical(reply, references[key])
                served += 1
        stats = gateway.stats()
        snapshot = gateway.metrics_snapshot()
        records = events_to_records(gateway.events)
    finally:
        gateway.close()

    total = THREADS * PER_THREAD
    # Conservation: the gateway's books match what the clients saw.
    assert served + shed == total
    assert stats.submitted == total
    assert stats.accepted == served and stats.shed == shed
    assert stats.completed == served and stats.failed == 0
    assert stats.in_flight == 0
    assert stats.shed_by_model["bin"] + stats.shed_by_model["pool"] == shed

    # Batch mass: executed batch sizes sum to the served batch factors.
    served_factors = sum(
        key[1]
        for key, future in flat
        if not isinstance(future.result(0), Rejected)
    )
    batch_mass = sum(size * n for size, n in stats.batch_histogram.items())
    assert batch_mass == served_factors
    assert sum(stats.batch_histogram.values()) == stats.batches
    assert max(stats.batch_histogram) <= 4  # never exceeds max_batch
    assert stats.p50_ms <= stats.p95_ms <= stats.p99_ms
    assert stats.verified is True

    # Post-close the queues are empty and both pools are intact.
    assert stats.queue_depth == {"bin": 0, "pool": 0}
    assert stats.replicas_healthy == {"bin": 2, "pool": 2}

    # Telemetry conservation: nothing was dropped on the floor, the
    # stream is schema-valid, and the event log tells the same story as
    # the counters (one accept per served request, one terminal each).
    assert snapshot["obs.events.dropped"] == 0
    assert snapshot["obs.trace.dropped"] == 0
    assert validate_events(records) == []
    kinds = [r["kind"] for r in records[1:]]
    assert kinds.count("request.accept") == served
    assert kinds.count("request.complete") == served
    assert kinds.count("request.shed") == shed


def test_second_seed_changes_mix_not_invariants(rng):
    """A different seed produces a different traffic mix (sanity that the
    fuzz is actually seeded), while the same conservation law holds —
    covered by the parametrized cells above; here we just pin the seeded
    submitter streams themselves."""
    a = np.random.default_rng(1000)
    b = np.random.default_rng(1000)
    c = np.random.default_rng(2000)
    draws_a = [int(a.integers(4)) for _ in range(50)]
    draws_b = [int(b.integers(4)) for _ in range(50)]
    draws_c = [int(c.integers(4)) for _ in range(50)]
    assert draws_a == draws_b
    assert draws_a != draws_c
