"""Tests for int8 quantization parameters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernels.quantization import (
    INT8_MAX,
    INT8_MIN,
    QuantParams,
    dequantize,
    quantize,
    quantize_weights_per_channel,
    requantize,
)


class TestQuantParams:
    def test_from_range_covers_interval(self):
        p = QuantParams.from_range(-1.0, 3.0)
        assert quantize(np.array(-1.0), p) >= INT8_MIN
        assert quantize(np.array(3.0), p) <= INT8_MAX

    def test_from_range_straddles_zero(self):
        # Even an all-positive range must represent 0 exactly (TFLite rule).
        p = QuantParams.from_range(2.0, 6.0)
        z = quantize(np.array(0.0), p)
        np.testing.assert_allclose(dequantize(z, p), 0.0, atol=p.scale)

    def test_degenerate_range(self):
        p = QuantParams.from_range(0.0, 0.0)
        assert p.scale > 0

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0)
        with pytest.raises(ValueError):
            QuantParams(scale=-1.0)

    def test_rejects_out_of_range_zero_point(self):
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=200)


class TestQuantizeDequantize:
    @given(seed=st.integers(0, 2**32 - 1))
    def test_roundtrip_error_bounded_by_half_scale(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-4, 4, 100).astype(np.float32)
        p = QuantParams.from_range(-4, 4)
        err = np.abs(dequantize(quantize(x, p), p) - x)
        assert err.max() <= p.scale * 0.51

    def test_clipping(self):
        p = QuantParams(scale=0.1, zero_point=0)
        q = quantize(np.array([1e6, -1e6]), p)
        assert q[0] == INT8_MAX and q[1] == INT8_MIN

    def test_dtype(self):
        p = QuantParams(scale=0.1)
        assert quantize(np.zeros(3), p).dtype == np.int8
        assert dequantize(np.zeros(3, np.int8), p).dtype == np.float32


class TestPerChannelWeights:
    def test_scales_per_output_channel(self, rng):
        w = rng.standard_normal((3, 3, 4, 8))
        q, scales = quantize_weights_per_channel(w)
        assert scales.shape == (8,)
        assert q.dtype == np.int8

    def test_max_value_maps_to_127(self, rng):
        w = rng.standard_normal((3, 3, 2, 4))
        q, scales = quantize_weights_per_channel(w)
        for c in range(4):
            assert np.abs(q[..., c]).max() == INT8_MAX

    def test_reconstruction_error(self, rng):
        w = rng.standard_normal((3, 3, 4, 8))
        q, scales = quantize_weights_per_channel(w)
        err = np.abs(q * scales - w)
        assert err.max() < np.abs(w).max() / 100

    def test_zero_channel_handled(self):
        w = np.zeros((1, 1, 2, 2))
        q, scales = quantize_weights_per_channel(w)
        assert np.all(q == 0)
        assert np.all(scales > 0)


class TestRequantize:
    def test_round_and_clip(self):
        out_p = QuantParams(scale=1.0, zero_point=10)
        acc = np.array([0, 50, 100000, -100000], np.int64)
        q = requantize(acc, 1.0, out_p)
        assert q[0] == 10
        assert q[1] == 60
        assert q[2] == INT8_MAX
        assert q[3] == INT8_MIN

    def test_per_channel_effective_scale(self):
        out_p = QuantParams(scale=1.0, zero_point=0)
        acc = np.array([[100, 100]], np.int64)
        q = requantize(acc, np.array([0.5, 0.25]), out_p)
        assert q[0, 0] == 50 and q[0, 1] == 25
