"""Tests for the graph IR: construction, rewrites, verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.ir import Graph, GraphError, Node, TensorSpec


def _simple_graph():
    g = Graph("g")
    g.add_input("x", TensorSpec((1, 4, 4, 8)))
    n1 = g.add_node("relu", ["x"], [TensorSpec((1, 4, 4, 8))], name="r1")
    n2 = g.add_node("relu", [n1.outputs[0]], [TensorSpec((1, 4, 4, 8))], name="r2")
    g.outputs = [n2.outputs[0]]
    return g, n1, n2


class TestTensorSpec:
    def test_normalizes_shape_to_ints(self):
        s = TensorSpec((np.int64(2), np.int64(3)))
        assert s.shape == (2, 3)
        assert all(isinstance(d, int) for d in s.shape)

    def test_rejects_bad_dtype(self):
        with pytest.raises(ValueError):
            TensorSpec((1,), "float16")

    def test_rejects_non_positive_dims(self):
        with pytest.raises(ValueError):
            TensorSpec((1, 0))

    def test_num_elements(self):
        assert TensorSpec((2, 3, 4)).num_elements == 24

    def test_nbytes_float32(self):
        assert TensorSpec((1, 2, 2, 8)).nbytes == 4 * 32

    def test_nbytes_int8(self):
        assert TensorSpec((1, 2, 2, 8), "int8").nbytes == 32

    def test_nbytes_bitpacked_rounds_words(self):
        # 70 channels -> 2 uint64 words per pixel.
        assert TensorSpec((1, 2, 2, 70), "bitpacked").nbytes == 4 * 2 * 8

    def test_bitpacked_is_32x_smaller(self):
        f = TensorSpec((1, 8, 8, 256))
        b = TensorSpec((1, 8, 8, 256), "bitpacked")
        assert f.nbytes == 32 * b.nbytes


class TestGraphConstruction:
    def test_simple_graph_verifies(self):
        g, _, _ = _simple_graph()
        g.verify()

    def test_duplicate_input_rejected(self):
        g = Graph()
        g.add_input("x", TensorSpec((1,)))
        with pytest.raises(GraphError):
            g.add_input("x", TensorSpec((1,)))

    def test_unknown_input_tensor_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node("relu", ["nope"], [TensorSpec((1,))])

    def test_duplicate_node_name_rejected(self):
        g, _, _ = _simple_graph()
        with pytest.raises(GraphError):
            g.add_node("relu", ["x"], [TensorSpec((1, 4, 4, 8))], name="r1")

    def test_multi_output_tensor_naming(self):
        g = Graph()
        g.add_input("x", TensorSpec((1,)))
        n = g.add_node("split", ["x"], [TensorSpec((1,)), TensorSpec((1,))], name="s")
        assert n.outputs == ["s", "s:1"]

    def test_fresh_names_unique(self):
        g = Graph()
        assert g.fresh_name("a") != g.fresh_name("a")


class TestQueries:
    def test_producer_and_consumers(self):
        g, n1, n2 = _simple_graph()
        assert g.producer(n1.outputs[0]) is n1
        assert g.producer("x") is None
        assert g.consumers(n1.outputs[0]) == [n2]
        assert g.consumers(n2.outputs[0]) == []

    def test_producer_unknown_tensor(self):
        g, _, _ = _simple_graph()
        with pytest.raises(KeyError):
            g.producer("nope")

    def test_node_lookup(self):
        g, n1, _ = _simple_graph()
        assert g.node("r1") is n1
        with pytest.raises(KeyError):
            g.node("nope")

    def test_ops_by_type(self):
        g, _, _ = _simple_graph()
        assert len(g.ops_by_type("relu")) == 2
        assert g.ops_by_type("conv2d") == []


class TestRewrites:
    def test_replace_uses(self):
        g, n1, n2 = _simple_graph()
        g.replace_uses(n1.outputs[0], "x")
        assert n2.inputs == ["x"]

    def test_replace_uses_updates_outputs(self):
        g, _, n2 = _simple_graph()
        g.replace_uses(n2.outputs[0], "x")
        assert g.outputs == ["x"]

    def test_replace_with_unknown_rejected(self):
        g, n1, _ = _simple_graph()
        with pytest.raises(GraphError):
            g.replace_uses(n1.outputs[0], "nope")

    def test_remove_node_requires_dead_outputs(self):
        g, n1, _ = _simple_graph()
        with pytest.raises(GraphError):
            g.remove_node(n1)

    def test_remove_dead_node(self):
        g, n1, n2 = _simple_graph()
        g.replace_uses(n2.outputs[0], n1.outputs[0])
        g.remove_node(n2)
        assert len(g) == 1
        g.verify()

    def test_insert_node_keeps_topological_order(self):
        g, n1, n2 = _simple_graph()
        inserted = g.insert_node(
            1, "relu", [n1.outputs[0]], [TensorSpec((1, 4, 4, 8))], name="mid"
        )
        n2.inputs = [inserted.outputs[0]]
        assert [n.name for n in g.nodes] == ["r1", "mid", "r2"]
        g.verify()


class TestVerify:
    def test_detects_non_topological_order(self):
        g, n1, n2 = _simple_graph()
        g.nodes.reverse()
        with pytest.raises(GraphError, match="topological"):
            g.verify()

    def test_detects_missing_output(self):
        g, _, _ = _simple_graph()
        g.outputs = ["missing"]
        with pytest.raises(GraphError):
            g.verify()

    def test_detects_dangling_spec(self):
        g, _, _ = _simple_graph()
        g.tensors["orphan"] = TensorSpec((1,))
        with pytest.raises(GraphError, match="no producer"):
            g.verify()


class TestParamBytes:
    def test_param_nbytes(self):
        g = Graph()
        g.add_input("x", TensorSpec((1, 4)))
        g.add_node(
            "dense", ["x"], [TensorSpec((1, 2))],
            params={"weights": np.zeros((4, 2), np.float32)},
        )
        assert g.param_nbytes() == 4 * 2 * 4

    def test_node_param_nbytes_skips_non_arrays(self):
        n = Node("n", "op", [], [], params={"weights": np.zeros(4, np.float32)})
        assert n.param_nbytes() == 16
