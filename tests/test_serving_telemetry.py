"""End-to-end telemetry acceptance: events, SLO health, flight recorder.

Everything runs on a FakeClock, so the latency the SLO monitor sees is
*injected* — the batching deadline is the only thing that moves virtual
time between submit and completion.  That makes the acceptance matrix
deterministic:

- a 50 ms deadline against a 10 ms p95 target must judge ``breached``;
- an immediate flush (deadline 0) against the same target must judge
  ``healthy``;
- a forced overload (tiny queue, parked batcher) must shed in a storm
  and trip the flight recorder into a schema-valid dump;
- the exported event stream must validate with exactly one terminal
  event per request id.
"""

from __future__ import annotations

import json

import pytest
from fake_clock import FakeClock
from test_runtime_parity import _batched_input, _binary_net

from repro.analysis import validate_events, validate_flight
from repro.concurrency.locks import LockOrderError, _notify_order_error
from repro.core.types import Padding
from repro.obs import (
    EventLog,
    FlightRecorder,
    SLOConfig,
    Tracer,
    events_to_records,
)
from repro.obs.events import request_kinds
from repro.serving import (
    SHED_QUEUE_FULL,
    SHED_UNKNOWN_MODEL,
    Gateway,
    GatewayConfig,
    Rejected,
)

pytestmark = pytest.mark.serving

TIMEOUT_S = 30.0


def _gateway(rng, *, deadline_ms, max_queue=64, max_batch=8, **kwargs):
    graph = _binary_net(rng, Padding.SAME_ONE)
    clock = FakeClock()
    config = GatewayConfig(
        max_batch=max_batch,
        deadline_ms=deadline_ms,
        max_queue=max_queue,
        replicas=1,
    )
    gateway = Gateway({"bin": graph}, config, clock=clock, **kwargs)
    return gateway, clock, _batched_input(graph, 1, rng)


# ------------------------------------------------------- lifecycle + stream
def test_event_stream_validates_with_one_terminal_per_request(rng):
    log = EventLog()
    gateway, clock, x = _gateway(rng, deadline_ms=0.0, events=log)
    try:
        gateway.warmup(factors=(1,))
        futures = [gateway.submit("bin", x) for _ in range(8)]
        for f in futures:
            assert not isinstance(f.result(TIMEOUT_S), Rejected)
        records = events_to_records(log)
    finally:
        gateway.close()

    assert validate_events(records) == []
    per_request = request_kinds(records[1:])
    assert len(per_request) == 8
    for rid, kinds in per_request.items():
        assert rid.startswith("bin-")
        assert kinds[0] == "request.accept"
        assert kinds[-1] == "request.complete"
        assert sum(k == "request.complete" for k in kinds) == 1
    kinds = {r["kind"] for r in records[1:]}
    # the engine's plan/batch events land in the same stream
    assert "plan.compile" in kinds
    assert "engine.batch" in kinds
    assert "batch.flush" in kinds


def test_unknown_model_sheds_with_a_request_scoped_event(rng):
    log = EventLog()
    gateway, clock, x = _gateway(rng, deadline_ms=0.0, events=log)
    try:
        reply = gateway.submit("nope", x).result(TIMEOUT_S)
        assert isinstance(reply, Rejected)
        assert reply.reason == SHED_UNKNOWN_MODEL
        records = events_to_records(log)
    finally:
        gateway.close()
    assert validate_events(records) == []
    sheds = [r for r in records[1:] if r["kind"] == "request.shed"]
    assert len(sheds) == 1
    assert sheds[0]["model"] == "nope"
    assert sheds[0]["attrs"]["reason"] == SHED_UNKNOWN_MODEL


def test_spans_and_events_join_on_request_id(rng):
    log = EventLog()
    tracer = Tracer()
    gateway, clock, x = _gateway(
        rng, deadline_ms=0.0, events=log, trace=tracer
    )
    try:
        assert not isinstance(
            gateway.submit("bin", x).result(TIMEOUT_S), Rejected
        )
        records = events_to_records(log)
        spans = tracer.spans()
    finally:
        gateway.close()
    accept = next(r for r in records[1:] if r["kind"] == "request.accept")
    submit_span = next(s for s in spans if s.name == "gateway.submit")
    assert submit_span.args["request_id"] == accept["request_id"]
    flush_span = next(s for s in spans if s.name == "gateway.flush")
    assert accept["request_id"] in flush_span.args["request_ids"]


# ----------------------------------------------------------- injected SLOs
def _served_with_deadline(rng, deadline_ms, slo):
    """Serve 3 requests whose latency is the (virtual) batching deadline."""
    gateway, clock, x = _gateway(rng, deadline_ms=deadline_ms, slo=slo)
    try:
        gateway.warmup(factors=(1,))
        futures = [gateway.submit("bin", x) for _ in range(3)]
        if deadline_ms > 0:
            # the batch (3 < max_batch) flushes only when virtual time
            # reaches the deadline: latency is injected exactly
            clock.wait_for_timed_waiters(1, TIMEOUT_S)
            clock.advance(deadline_ms / 1e3)
        for f in futures:
            assert not isinstance(f.result(TIMEOUT_S), Rejected)
        return gateway.health()["bin"], gateway.metrics_snapshot()
    finally:
        gateway.close()


def test_injected_latency_breaches_p95_slo(rng):
    slo = SLOConfig(target_p95_ms=10.0, window_s=60.0)
    health, snapshot = _served_with_deadline(rng, 50.0, slo)
    assert health.status == "breached"
    assert health.p95_ms == pytest.approx(50.0)
    assert health.window_completed == 3
    assert any("p95" in r for r in health.reasons)
    assert snapshot["slo.bin.status"] == 2


def test_fast_path_is_healthy_under_the_same_slo(rng):
    slo = SLOConfig(target_p95_ms=10.0, window_s=60.0)
    health, snapshot = _served_with_deadline(rng, 0.0, slo)
    assert health.status == "healthy"
    assert health.reasons == ("ok",)
    assert health.p95_ms == pytest.approx(0.0)  # zero virtual time passed
    assert snapshot["slo.bin.status"] == 0


def test_slo_for_unknown_model_is_rejected(rng):
    graph = _binary_net(rng, Padding.SAME_ONE)
    with pytest.raises(ValueError, match="unknown model"):
        Gateway(
            {"bin": graph},
            GatewayConfig(),
            clock=FakeClock(),
            slo={"nope": SLOConfig(target_p95_ms=1.0)},
        )


# --------------------------------------------------------- flight recorder
def test_overload_storm_trips_the_flight_recorder(rng, tmp_path):
    log = EventLog()
    flight = FlightRecorder(
        tmp_path,
        shed_storm_threshold=3,
        shed_storm_window_s=10.0,
        min_interval_s=0.0,
    )
    # A long deadline parks the batcher, so the tiny queue fills and the
    # remaining submits shed deterministically.
    gateway, clock, x = _gateway(
        rng, deadline_ms=1000.0, max_queue=2, events=log, flight=flight
    )
    try:
        gateway.warmup(factors=(1,))
        first = gateway.submit("bin", x)
        clock.wait_for_timed_waiters(1, TIMEOUT_S)  # batcher is parked
        futures = [first] + [gateway.submit("bin", x) for _ in range(9)]
        replies = []
        clock.advance(1.0)  # deadline: flush the two accepted requests
        for f in futures:
            replies.append(f.result(TIMEOUT_S))
        records = events_to_records(log)
        snapshot = gateway.metrics_snapshot()
    finally:
        gateway.close()

    shed = [r for r in replies if isinstance(r, Rejected)]
    assert len(shed) == 8
    assert all(r.reason == SHED_QUEUE_FULL for r in shed)

    # the storm fired and wrote a schema-valid dump
    assert flight.dumps >= 1
    assert snapshot["obs.flight.dumps"] == flight.dumps
    dump_path = tmp_path / "flight_shed_storm.json"
    assert dump_path.exists()
    obj = json.loads(dump_path.read_text())
    assert validate_flight(obj) == []
    assert obj["reason"] == "shed_storm"
    assert obj["metrics"]["gateway.shed"] >= 3
    assert any(e["kind"] == "gateway.dump" for e in obj["events"])

    # the stream stays valid through the overload: every shed request
    # has exactly its one terminal event
    assert validate_events(records) == []
    per_request = request_kinds(records[1:])
    assert sum(k == ["request.shed"] for k in per_request.values()) == 8


def test_manual_dump_bypasses_the_rate_limit(rng, tmp_path):
    flight = FlightRecorder(tmp_path, min_interval_s=3600.0)
    gateway, clock, x = _gateway(
        rng, deadline_ms=0.0, events=EventLog(), flight=flight
    )
    try:
        assert not isinstance(
            gateway.submit("bin", x).result(TIMEOUT_S), Rejected
        )
        first = gateway.dump("manual")
        second = gateway.dump("manual")  # forced: the limiter never wins
    finally:
        gateway.close()
    assert first is not None and second is not None
    obj = json.loads(second.read_text())
    assert validate_flight(obj) == []
    assert obj["reason"] == "manual"


def test_lock_order_error_hook_defers_then_dumps(rng, tmp_path):
    flight = FlightRecorder(tmp_path, min_interval_s=0.0)
    gateway, clock, x = _gateway(
        rng, deadline_ms=0.0, events=EventLog(), flight=flight
    )
    try:
        # Simulate the sanitizer detecting an inversion on some thread:
        # the hook must only park the reason (no locks, no I/O)...
        _notify_order_error(
            LockOrderError(
                "synthetic inversion",
                acquiring="serving.server",
                held=("obs.metrics",),
            )
        )
        assert flight.dumps == 0
        # ...and the next safe point (health()) writes the dump.
        gateway.health()
        assert flight.dumps == 1
    finally:
        gateway.close()
    obj = json.loads((tmp_path / "flight_lock_order.json").read_text())
    assert validate_flight(obj) == []
    assert obj["reason"] == "lock_order"


def test_disabled_telemetry_emits_nothing(rng):
    gateway, clock, x = _gateway(rng, deadline_ms=0.0)
    try:
        assert not isinstance(
            gateway.submit("bin", x).result(TIMEOUT_S), Rejected
        )
        assert gateway.events.events() == []
        records = events_to_records(gateway.events)
        # health() without an SLO still answers (vacuously healthy)
        health = gateway.health()["bin"]
    finally:
        gateway.close()
    assert records[0]["count"] == 0
    assert health.status == "healthy"
    assert health.reasons == ("no slo configured",)
