"""Tests for the LCE model file format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.converter import convert
from repro.core.types import Padding
from repro.graph.builder import GraphBuilder
from repro.graph.executor import Executor
from repro.graph.serialization import MAGIC, load_model, save_model
from repro.kernels.batchnorm import BatchNormParams


def _toy_binary_graph(rng, channels=64):
    b = GraphBuilder((1, 8, 8, channels))
    h = b.binarize(b.input)
    h = b.conv2d(
        h, rng.choice([-1.0, 1.0], (3, 3, channels, channels)).astype(np.float32),
        padding=Padding.SAME_ONE, binary_weights=True,
    )
    h = b.batch_norm(h, BatchNormParams.identity(channels))
    h = b.global_avgpool(h)
    return b.finish(h)


class TestRoundTrip:
    def test_training_graph_roundtrip(self, rng, tmp_path):
        g = _toy_binary_graph(rng)
        path = tmp_path / "model.lce"
        save_model(g, path)
        g2 = load_model(path)
        x = rng.standard_normal((1, 8, 8, 64)).astype(np.float32)
        np.testing.assert_allclose(Executor(g).run(x), Executor(g2).run(x), rtol=1e-6)

    def test_converted_graph_roundtrip(self, rng, tmp_path):
        model = convert(_toy_binary_graph(rng))
        path = tmp_path / "model.lce"
        save_model(model.graph, path)
        g2 = load_model(path)
        x = rng.standard_normal((1, 8, 8, 64)).astype(np.float32)
        assert np.array_equal(
            Executor(model.graph).run(x), Executor(g2).run(x)
        )

    def test_preserves_structure(self, rng, tmp_path):
        model = convert(_toy_binary_graph(rng))
        path = tmp_path / "model.lce"
        save_model(model.graph, path)
        g2 = load_model(path)
        assert [n.op for n in g2.nodes] == [n.op for n in model.graph.nodes]
        assert g2.inputs == model.graph.inputs
        assert g2.outputs == model.graph.outputs

    def test_uint64_filter_bits_preserved(self, rng, tmp_path):
        model = convert(_toy_binary_graph(rng))
        path = tmp_path / "model.lce"
        save_model(model.graph, path)
        g2 = load_model(path)
        orig = model.graph.ops_by_type("lce_bconv2d")[0].params["filter_bits"]
        loaded = g2.ops_by_type("lce_bconv2d")[0].params["filter_bits"]
        assert loaded.dtype == np.uint64
        assert np.array_equal(orig, loaded)


class TestCompression:
    def test_converted_file_much_smaller(self, rng, tmp_path):
        """Binary weight compression (paper Section 3.1): the dominant
        binary conv weights shrink 32x, so the converted file is a fraction
        of the training graph's."""
        g = _toy_binary_graph(rng, channels=64)
        training_size = save_model(g, tmp_path / "train.lce")
        model = convert(g)
        converted_size = save_model(model.graph, tmp_path / "conv.lce")
        assert converted_size < training_size / 10

    def test_binary_weight_buffers_exactly_32x(self, rng):
        g = _toy_binary_graph(rng, channels=64)
        float_weights = g.ops_by_type("conv2d")[0].params["weights"]
        model = convert(g)
        packed = model.graph.ops_by_type("lce_bconv2d")[0].params["filter_bits"]
        assert float_weights.nbytes == 32 * packed.nbytes


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.lce"
        path.write_bytes(b"NOTAMODEL" + b"\0" * 100)
        with pytest.raises(ValueError, match="not an LCE model"):
            load_model(path)

    def test_bad_version(self, rng, tmp_path):
        g = _toy_binary_graph(rng)
        path = tmp_path / "model.lce"
        save_model(g, path)
        raw = bytearray(path.read_bytes())
        raw[len(MAGIC)] = 99  # clobber the version field
        path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="version"):
            load_model(path)

    def test_unverifiable_graph_rejected_on_save(self, rng, tmp_path):
        g = _toy_binary_graph(rng)
        g.outputs = ["missing"]
        with pytest.raises(Exception):
            save_model(g, tmp_path / "bad.lce")


class TestFaultInjection:
    def test_truncated_buffer_section(self, rng, tmp_path):
        g = _toy_binary_graph(rng)
        path = tmp_path / "model.lce"
        save_model(g, path)
        raw = path.read_bytes()
        (tmp_path / "trunc.lce").write_bytes(raw[: len(raw) - 64])
        with pytest.raises(ValueError):
            load_model(tmp_path / "trunc.lce")

    def test_truncated_header(self, rng, tmp_path):
        g = _toy_binary_graph(rng)
        path = tmp_path / "model.lce"
        save_model(g, path)
        raw = path.read_bytes()
        (tmp_path / "trunc.lce").write_bytes(raw[:40])
        with pytest.raises(Exception):
            load_model(tmp_path / "trunc.lce")

    def test_corrupted_json_header(self, rng, tmp_path):
        g = _toy_binary_graph(rng)
        path = tmp_path / "model.lce"
        save_model(g, path)
        raw = bytearray(path.read_bytes())
        raw[20] = ord("!")  # clobber the header's opening brace
        (tmp_path / "bad.lce").write_bytes(bytes(raw))
        with pytest.raises(Exception):
            load_model(tmp_path / "bad.lce")

    def test_empty_file(self, tmp_path):
        (tmp_path / "empty.lce").write_bytes(b"")
        with pytest.raises(ValueError):
            load_model(tmp_path / "empty.lce")
