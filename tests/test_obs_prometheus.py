"""Deterministic Prometheus text exposition of the metrics registry."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    parse_prometheus_text,
    prom_name,
    prometheus_text,
)


def test_prom_name_sanitizes_and_prefixes():
    assert prom_name("gateway.submitted") == "repro_gateway_submitted"
    assert (
        prom_name("gateway.quicknet_small.latency_ms")
        == "repro_gateway_quicknet_small_latency_ms"
    )
    assert prom_name("weird-name:x", prefix="") == "weird_name_x"


def test_counter_and_gauge_rendering():
    registry = MetricsRegistry()
    registry.counter("gateway.submitted").add(3)
    registry.gauge("pool.depth").set(2.5)
    text = prometheus_text(registry)
    assert "# TYPE repro_gateway_submitted counter\n" in text
    assert "repro_gateway_submitted_total 3\n" in text
    assert "# TYPE repro_pool_depth gauge\n" in text
    assert "repro_pool_depth 2.5\n" in text


def test_histogram_renders_cumulative_sorted_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("latency_ms")
    for v in (10.0, 2.0, 2.0, 30.0):
        hist.observe(v)
    text = prometheus_text(registry)
    lines = [l for l in text.splitlines() if l.startswith("repro_latency_ms")]
    assert lines == [
        'repro_latency_ms_bucket{le="2.0"} 2',
        'repro_latency_ms_bucket{le="10.0"} 3',
        'repro_latency_ms_bucket{le="30.0"} 4',
        'repro_latency_ms_bucket{le="+Inf"} 4',
        "repro_latency_ms_sum 44.0",
        "repro_latency_ms_count 4",
    ]


def test_rendering_is_deterministic_and_sorted():
    def build():
        registry = MetricsRegistry()
        registry.counter("b.second").add(1)
        registry.gauge("a.first").set(1)
        registry.histogram("c.third").observe(1.0)
        return prometheus_text(registry)

    text = build()
    assert text == build()  # same snapshot -> same bytes
    names = [
        l.split(" ", 2)[2].rsplit(" ")[0]
        for l in text.splitlines()
        if l.startswith("# TYPE")
    ]
    assert names == sorted(names)


def test_empty_registry_renders_empty():
    assert prometheus_text(MetricsRegistry()) == ""


def test_parse_round_trip():
    registry = MetricsRegistry()
    registry.counter("gateway.submitted").add(7)
    registry.gauge("obs.events.dropped").set(0)
    registry.histogram("latency_ms").observe(2.0)
    parsed = parse_prometheus_text(prometheus_text(registry))
    assert parsed["repro_gateway_submitted_total"] == 7.0
    assert parsed["repro_obs_events_dropped"] == 0.0
    assert parsed['repro_latency_ms_bucket{le="2.0"}'] == 1.0
    assert parsed['repro_latency_ms_bucket{le="+Inf"}'] == 1.0
    assert parsed["repro_latency_ms_count"] == 1.0


def test_parse_rejects_malformed_and_duplicates():
    with pytest.raises(ValueError):
        parse_prometheus_text("just_a_name_no_value\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("metric not_a_number\n")
    with pytest.raises(ValueError):
        parse_prometheus_text("metric 1\nmetric 2\n")
    # comments and blank lines are skipped, not errors
    assert parse_prometheus_text("# TYPE x counter\n\nx_total 1\n") == {
        "x_total": 1.0
    }


def test_callback_gauges_render_live_values():
    registry = MetricsRegistry()
    registry.gauge("obs.trace.dropped", lambda: 5)
    parsed = parse_prometheus_text(prometheus_text(registry))
    assert parsed["repro_obs_trace_dropped"] == 5.0
