"""Unit tests for the unified metrics registry (`repro.obs.metrics`).

Covers the instrument types, registry semantics (get-or-create, type
clashes, snapshot/reset), the module-cache views on the global registry,
and — the regression this layer exists for — EngineStats snapshot
consistency under concurrent submission.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.im2col import conv_geometry, geometry_cache_clear, geometry_cache_stats
from repro.core.indirection import (
    get_indirection,
    indirection_cache_clear,
    indirection_cache_stats,
)
from repro.core.types import Padding
from repro.graph.builder import GraphBuilder
from repro.obs.metrics import (
    Counter,
    MetricsRegistry,
    format_snapshot,
    global_registry,
    quantile_from_counts,
)
from repro.runtime import Engine


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc()
        c.add(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="negative"):
            c.add(-1)

    def test_settable_gauge(self):
        g = MetricsRegistry().gauge("g")
        assert g.value == 0 and not g.is_callback
        g.set(7)
        assert g.value == 7

    def test_callback_gauge(self):
        state = {"v": 41}
        g = MetricsRegistry().gauge("g", lambda: state["v"])
        assert g.is_callback
        state["v"] = 42
        assert g.value == 42
        with pytest.raises(ValueError, match="callback"):
            g.set(0)

    def test_callback_gauge_reregistration(self):
        reg = MetricsRegistry()
        fn = lambda: 1  # noqa: E731
        assert reg.gauge("g", fn) is reg.gauge("g", fn)  # same fn: fine
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("g", lambda: 2)

    def test_histogram(self):
        h = MetricsRegistry().histogram("h")
        for v in (1, 4, 4, 8):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(17 / 4)
        assert h.counts() == {1: 1, 4: 2, 8: 1}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert isinstance(reg.get("x"), Counter)
        assert reg.get("missing") is None

    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="Counter"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="Counter"):
            reg.histogram("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ("a", "b")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").add(3)
        reg.gauge("g").set(1.5)
        reg.gauge("cb", lambda: 9)
        reg.histogram("h").observe(2)
        snap = reg.snapshot()
        assert snap["c"] == 3 and snap["g"] == 1.5 and snap["cb"] == 9
        assert snap["h"] == {
            "count": 1, "total": 2, "min": 2, "max": 2, "counts": {2: 1},
        }

    def test_reset_zeroes_natives_keeps_callbacks(self):
        reg = MetricsRegistry()
        reg.counter("c").add(3)
        reg.gauge("g").set(4)
        reg.histogram("h").observe(5)
        reg.gauge("cb", lambda: 6)
        reg.reset()
        snap = reg.snapshot()
        assert snap["c"] == 0 and snap["g"] == 0
        assert snap["h"]["count"] == 0 and snap["h"]["counts"] == {}
        assert snap["cb"] == 6  # callback view: reset the subsystem instead

    def test_grouped_updates_are_atomic(self):
        """Updates under ``with registry.lock():`` land in one snapshot."""
        reg = MetricsRegistry()
        c = reg.counter("batches")
        h = reg.histogram("sizes")
        stop = threading.Event()
        bad: list[dict] = []

        def writer():
            while not stop.is_set():
                with reg.lock():
                    c.inc()
                    h.observe(4)

        def reader():
            for _ in range(300):
                snap = reg.snapshot()
                if snap["batches"] != snap["sizes"]["count"]:
                    bad.append(snap)

        w = threading.Thread(target=writer)
        w.start()
        reader()
        stop.set()
        w.join()
        assert not bad, f"snapshot observed a half-counted batch: {bad[0]}"


class TestHistogramQuantile:
    """Edge cases of the nearest-rank quantile the SLO monitor leans on."""

    def test_empty_histogram_is_zero(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.95) == 0.0
        assert h.quantile(1.0) == 0.0

    def test_single_bucket_mass_always_answers_that_bucket(self):
        h = MetricsRegistry().histogram("h")
        for _ in range(100):
            h.observe(7.5)
        for q in (0.0, 0.01, 0.5, 0.95, 1.0):
            assert h.quantile(q) == 7.5

    def test_all_mass_in_the_top_bucket(self):
        """One light low bucket, everything else in the highest bucket:
        every interesting quantile lands on the top value (the fallback
        return path when the rank walks past the last bucket)."""
        h = MetricsRegistry().histogram("h")
        h.observe(1.0)
        for _ in range(99):
            h.observe(1000.0)
        assert h.quantile(0.01) == 1.0
        assert h.quantile(0.02) == 1000.0
        assert h.quantile(0.95) == 1000.0
        assert h.quantile(1.0) == 1000.0

    def test_quantile_bounds_are_enforced(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_quantile_from_counts_accepts_stringified_keys(self):
        # JSON round-trips stringify bucket keys; the shared helper must
        # still sort numerically, not lexically
        counts = {"9.0": 5, "10.0": 5, "100.0": 1}
        assert quantile_from_counts(counts, 0.5) == 10.0
        assert quantile_from_counts(counts, 1.0) == 100.0

    def test_monotone_under_concurrent_grouped_updates(self):
        """p50 <= p95 <= p99 holds in every snapshot while writers hammer
        the histogram through grouped updates."""
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        stop = threading.Event()
        bad: list[tuple] = []

        def writer(values):
            while not stop.is_set():
                with reg.lock():
                    for v in values:
                        h.observe(v)

        def reader():
            for _ in range(300):
                counts = reg.snapshot()["latency"]["counts"]
                p50 = quantile_from_counts(counts, 0.5)
                p95 = quantile_from_counts(counts, 0.95)
                p99 = quantile_from_counts(counts, 0.99)
                if not p50 <= p95 <= p99:
                    bad.append((p50, p95, p99))

        writers = [
            threading.Thread(target=writer, args=(vals,))
            for vals in ((1.0, 2.0), (5.0, 50.0), (100.0,))
        ]
        for w in writers:
            w.start()
        reader()
        stop.set()
        for w in writers:
            w.join()
        assert not bad, f"non-monotone percentiles observed: {bad[0]}"


class TestFormatSnapshot:
    def test_alignment_and_rendering(self):
        snap = {
            "long.counter.name": 3,
            "g": 0.125,
            "h": {"count": 2, "total": 6, "min": 2, "max": 4,
                  "counts": {4: 1, 2: 1}},
        }
        text = format_snapshot(snap, indent="  ")
        lines = text.splitlines()
        assert lines[0].startswith("  g")
        assert "count=2 mean=3.00 min=2 max=4 counts={2: 1, 4: 1}" in text
        assert "long.counter.name  3" in text

    def test_empty(self):
        assert format_snapshot({}) == ""


class TestGlobalCacheViews:
    """Satellite: module caches exposed through the global registry."""

    def test_indirection_gauges_track_cache(self):
        indirection_cache_clear()
        snap = global_registry().snapshot()
        assert snap["indirection.entries"] == 0
        assert snap["indirection.hits"] == 0 and snap["indirection.misses"] == 0

        get_indirection(6, 6, 3, 3, 1, 1, Padding.SAME_ONE)
        get_indirection(6, 6, 3, 3, 1, 1, Padding.SAME_ONE)
        snap = global_registry().snapshot()
        stats = indirection_cache_stats()
        assert snap["indirection.entries"] == stats.entries == 1
        assert snap["indirection.misses"] == stats.misses == 1
        assert snap["indirection.hits"] == stats.hits >= 1
        assert snap["indirection.bytes"] == stats.nbytes > 0

        indirection_cache_clear()
        snap = global_registry().snapshot()
        assert snap["indirection.entries"] == 0 and snap["indirection.hits"] == 0

    def test_convgeom_gauges_track_lru_caches(self):
        geometry_cache_clear()
        assert geometry_cache_stats().entries == 0
        conv_geometry(8, 8, 3, 3, 1, 1, Padding.SAME_ONE)
        conv_geometry(8, 8, 3, 3, 1, 1, Padding.SAME_ONE)
        snap = global_registry().snapshot()
        assert snap["convgeom.entries"] == 1
        assert snap["convgeom.misses"] == 1
        assert snap["convgeom.hits"] == 1
        geometry_cache_clear()
        assert global_registry().snapshot()["convgeom.entries"] == 0


def _tiny_net(rng):
    b = GraphBuilder((1, 6, 6, 3))
    x = b.conv2d(b.input, rng.standard_normal((3, 3, 3, 4)).astype(np.float32))
    x = b.relu(x)
    x = b.global_avgpool(x)
    return b.finish(x)


class TestEngineStatsConsistency:
    """Satellite bugfix: stats() used to read counters without a common
    lock, so a concurrent reader could observe a batch counted in
    ``batches`` but missing from the histogram.  Every counter now lives
    in the engine's registry and snapshots take one lock hold."""

    def test_engine_metrics_present(self, rng):
        x = rng.standard_normal((1, 6, 6, 3)).astype(np.float32)
        with Engine(_tiny_net(rng)) as engine:
            engine.run(x)
            snap = engine.metrics_snapshot()
        for name in (
            "engine.requests", "engine.samples", "engine.batches",
            "engine.batch_size", "engine.busy_s", "engine.verified",
            "plancache.hits", "plancache.misses",
            "paramcache.hits", "paramcache.misses",
            "workspace.bytes_reserved", "bgemm.threads",
            "indirection.entries", "convgeom.entries",
        ):
            assert name in snap, name

    def test_stats_atomic_under_concurrent_submit(self, rng):
        x = rng.standard_normal((1, 6, 6, 3)).astype(np.float32)
        n_threads, per_thread = 4, 25
        violations: list[str] = []
        stop = threading.Event()

        with Engine(_tiny_net(rng), max_batch_size=4) as engine:

            def reader():
                while not stop.is_set():
                    s = engine.stats()
                    hist_batches = sum(s.batch_histogram.values())
                    hist_samples = sum(
                        k * v for k, v in s.batch_histogram.items()
                    )
                    if hist_batches != s.batches:
                        violations.append(
                            f"sum(hist)={hist_batches} != batches={s.batches}"
                        )
                    if hist_samples != s.samples:
                        violations.append(
                            f"hist samples={hist_samples} != {s.samples}"
                        )

            def submitter():
                futures = [engine.submit(x) for _ in range(per_thread)]
                for fut in futures:
                    fut.result(timeout=30)

            watch = threading.Thread(target=reader)
            watch.start()
            workers = [
                threading.Thread(target=submitter) for _ in range(n_threads)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            stop.set()
            watch.join()

            final = engine.stats()
        assert not violations, violations[:3]
        assert final.requests == n_threads * per_thread
        assert final.samples == n_threads * per_thread
        assert sum(final.batch_histogram.values()) == final.batches
        assert final.verified is True
