"""Tests for repro.core.indirection: compile-time im2col plans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitpack import pack_bits
from repro.core.im2col import im2col_packed
from repro.core.indirection import (
    get_indirection,
    im2col_indirect,
    indirection_cache_clear,
    indirection_cache_stats,
)
from repro.core.types import Padding
from repro.core.workspace import Workspace

GEOMETRIES = [
    # (h, w, kh, kw, stride, dilation, padding)
    (8, 8, 3, 3, 1, 1, Padding.SAME_ONE),
    (8, 8, 3, 3, 1, 1, Padding.SAME_ZERO),
    (9, 7, 3, 3, 2, 1, Padding.SAME_ONE),
    (8, 8, 3, 3, 1, 2, Padding.SAME_ONE),
    (8, 8, 5, 5, 1, 1, Padding.VALID),
    (7, 7, 1, 1, 1, 1, Padding.SAME_ONE),
]


class TestGetIndirection:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_matches_dynamic_im2col(self, rng, geometry):
        """The indirect gather is bit-identical to the original per-call
        ``np.pad`` + fancy-indexing path — the tentpole's core contract."""
        h, w, kh, kw, stride, dilation, padding = geometry
        x = pack_bits(rng.standard_normal((2, h, w, 70)).astype(np.float32))
        expected, geom = im2col_packed(x, kh, kw, stride, dilation, padding)
        ind = get_indirection(h, w, kh, kw, stride, dilation, padding)
        assert ind.geom == geom
        got = im2col_indirect(x, ind)
        assert got.dtype == expected.dtype
        assert np.array_equal(got, expected)

    def test_memoized_identity(self):
        a = get_indirection(8, 8, 3, 3, 1, 1, Padding.SAME_ONE)
        b = get_indirection(8, 8, 3, 3, 1, 1, Padding.SAME_ONE)
        assert a is b

    def test_cache_hits_counted(self):
        indirection_cache_clear()
        get_indirection(5, 5, 3, 3, 1, 1, Padding.SAME_ONE)
        get_indirection(5, 5, 3, 3, 1, 1, Padding.SAME_ONE)
        get_indirection(5, 5, 3, 3, 1, 1, Padding.VALID)
        stats = indirection_cache_stats()
        assert stats.entries == 2
        assert stats.misses == 2
        assert stats.hits == 1
        assert stats.nbytes > 0

    def test_arrays_read_only(self):
        ind = get_indirection(6, 6, 3, 3, 1, 1, Padding.SAME_ZERO)
        assert not ind.flat_index.flags.writeable
        assert ind.pad_mask is not None and not ind.pad_mask.flags.writeable

    def test_pad_mask_only_for_same_zero(self):
        assert get_indirection(6, 6, 3, 3, 1, 1, Padding.SAME_ONE).pad_mask is None
        assert get_indirection(6, 6, 3, 3, 1, 1, Padding.VALID).pad_mask is None


class TestWorkspacePath:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_workspace_bit_identical(self, rng, geometry):
        h, w, kh, kw, stride, dilation, padding = geometry
        x = pack_bits(rng.standard_normal((2, h, w, 70)).astype(np.float32))
        ind = get_indirection(h, w, kh, kw, stride, dilation, padding)
        ws = Workspace()
        assert np.array_equal(im2col_indirect(x, ind, ws), im2col_indirect(x, ind))

    def test_buffers_reused_across_calls(self, rng):
        ind = get_indirection(8, 8, 3, 3, 1, 1, Padding.SAME_ONE)
        x = pack_bits(rng.standard_normal((2, 8, 8, 70)).astype(np.float32))
        ws = Workspace()
        im2col_indirect(x, ind, ws)
        patches_buf = ws.buffer("bconv/patches")
        padded_buf = ws.buffer("bconv/padded")
        grows = ws.grows
        for _ in range(3):
            im2col_indirect(x, ind, ws)
        assert ws.grows == grows
        assert ws.buffer("bconv/patches") is patches_buf
        assert ws.buffer("bconv/padded") is padded_buf

    def test_stale_border_rezeroed(self, rng):
        """A reused padded buffer may hold another node's words in its
        border; the indirect path must re-zero it (one-padding semantics)."""
        ind = get_indirection(6, 6, 3, 3, 1, 1, Padding.SAME_ONE)
        x = pack_bits(rng.standard_normal((1, 6, 6, 64)).astype(np.float32))
        ws = Workspace()
        expected = im2col_indirect(x, ind)
        # Poison the buffer the padded staging area will reuse.
        ws.take("bconv/padded", (1, 8, 8, 1), np.uint64)[...] = np.uint64(~np.uint64(0))
        got = im2col_indirect(x, ind, ws)
        assert np.array_equal(got, expected)

    def test_shape_mismatch_rejected(self, rng):
        ind = get_indirection(6, 6, 3, 3, 1, 1, Padding.SAME_ONE)
        x = pack_bits(rng.standard_normal((1, 7, 7, 64)).astype(np.float32))
        with pytest.raises(ValueError, match="indirection was built for"):
            im2col_indirect(x, ind)
