"""Seeded-violation tests for the concurrency analysis engine (C-rules).

Mirrors ``tests/test_lint_rules.py``: each rule in
:mod:`repro.analysis.concurrency` is exercised against known-bad snippets
written under ``tmp_path`` (C004 is path-scoped to ``serving/``, so those
fixtures recreate the directory shape).  The real repo's ``src/`` tree
must check clean, and ``repro.cli analyze --concurrency`` must exit zero
on it.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys
import textwrap

from repro.analysis.concurrency import check_file, check_paths, check_repo
from repro.analysis.diagnostics import errors_of

REPO = pathlib.Path(__file__).resolve().parent.parent


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _check(tmp_path, relpath, source):
    return check_file(_write(tmp_path, relpath, source))


def _rules(diags):
    return {d.rule for d in diags}


# ------------------------------------------------------ C001: lock inventory


def test_c001_raw_lock_construction(tmp_path):
    diags = _check(tmp_path, "src/repro/runtime/m.py", """\
        import threading

        _LOCK = threading.Lock()
        """)
    assert _rules(diags) == {"C001"}
    assert "raw threading.Lock" in diags[0].message


def test_c001_raw_rlock_and_bare_condition(tmp_path):
    diags = _check(tmp_path, "src/repro/obs/m.py", """\
        import threading

        A = threading.RLock()
        B = threading.Condition()
        """)
    assert [d.rule for d in diags] == ["C001", "C001"]


def test_c001_unregistered_name(tmp_path):
    diags = _check(tmp_path, "src/repro/core/m.py", """\
        from repro.concurrency.locks import ordered_lock

        L = ordered_lock("no.such.lock")
        """)
    assert _rules(diags) == {"C001"}
    assert "not registered" in diags[0].message


def test_c001_non_literal_name(tmp_path):
    diags = _check(tmp_path, "src/repro/core/m.py", """\
        from repro.concurrency.locks import ordered_lock

        def make(name):
            return ordered_lock(name)
        """)
    assert _rules(diags) == {"C001"}
    assert "string-literal" in diags[0].message


def test_c001_rank_override_is_test_only(tmp_path):
    diags = _check(tmp_path, "src/repro/core/m.py", """\
        from repro.concurrency.locks import OrderedLock

        L = OrderedLock("whatever", rank=5)
        """)
    assert _rules(diags) == {"C001"}
    assert "test-only" in diags[0].message


def test_c001_reentrancy_must_match_the_table(tmp_path):
    # obs.trace is registered non-reentrant; asking for an RLock there is
    # a registration bug, not a spelling choice.
    diags = _check(tmp_path, "src/repro/obs/m.py", """\
        from repro.concurrency.locks import ordered_rlock

        L = ordered_rlock("obs.trace")
        """)
    assert _rules(diags) == {"C001"}


def test_c001_registered_factory_call_is_clean(tmp_path):
    assert not _check(tmp_path, "src/repro/obs/m.py", """\
        from repro.concurrency.locks import ordered_lock, ordered_rlock

        A = ordered_lock("obs.trace")
        B = ordered_rlock("obs.metrics")
        """)


def test_c001_suppression_with_reason(tmp_path):
    assert not _check(tmp_path, "src/repro/runtime/m.py", """\
        import threading

        _MU = threading.Lock()  # repro: allow[C001] internal mutex of the checker itself
        """)


# ---------------------------------------------------------- C002: lock order


def test_c002_rank_inversion_in_nested_with(tmp_path):
    diags = _check(tmp_path, "src/repro/runtime/m.py", """\
        from repro.concurrency.locks import ordered_lock, ordered_rlock

        METRICS = ordered_rlock("obs.metrics")
        PLAN = ordered_lock("runtime.engine.plan")

        def wrong():
            with METRICS:
                with PLAN:
                    pass
        """)
    assert _rules(diags) == {"C002"}
    assert "rank inversion" in diags[0].message


def test_c002_ascending_ranks_are_clean(tmp_path):
    assert not _check(tmp_path, "src/repro/runtime/m.py", """\
        from repro.concurrency.locks import ordered_lock, ordered_rlock

        METRICS = ordered_rlock("obs.metrics")
        PLAN = ordered_lock("runtime.engine.plan")

        def right():
            with PLAN:
                with METRICS:
                    pass
        """)


def test_c002_self_reacquire_of_non_reentrant_lock(tmp_path):
    diags = _check(tmp_path, "src/repro/runtime/m.py", """\
        from repro.concurrency.locks import ordered_lock

        PLAN = ordered_lock("runtime.engine.plan")

        def deadlock():
            with PLAN:
                with PLAN:
                    pass
        """)
    assert _rules(diags) == {"C002"}
    assert "self-deadlock" in diags[0].message


def test_c002_reentrant_reentry_is_clean(tmp_path):
    assert not _check(tmp_path, "src/repro/obs/m.py", """\
        from repro.concurrency.locks import ordered_rlock

        METRICS = ordered_rlock("obs.metrics")

        def grouped():
            with METRICS:
                with METRICS:
                    pass
        """)


def test_c002_resolves_instance_attr_locks(tmp_path):
    diags = _check(tmp_path, "src/repro/serving/m.py", """\
        from repro.concurrency.locks import ordered_lock, ordered_rlock

        class S:
            def __init__(self):
                self._lock = ordered_lock("serving.server")
                self._metrics_lock = ordered_rlock("obs.metrics")

            def wrong(self):
                with self._metrics_lock:
                    with self._lock:
                        pass
        """)
    assert "C002" in _rules(diags)


def test_c002_resolves_the_metrics_lock_accessor(tmp_path):
    # `with registry.lock():` is the repo's accessor idiom for the
    # obs.metrics leaf lock (repro.concurrency.order.ACQUIRE_METHODS).
    diags = _check(tmp_path, "src/repro/runtime/m.py", """\
        from repro.concurrency.locks import ordered_lock

        PLAN = ordered_lock("runtime.engine.plan")

        def wrong(registry):
            with registry.lock():
                with PLAN:
                    pass

        def right(registry):
            with PLAN:
                with registry.lock():
                    pass
        """)
    assert [d.rule for d in diags] == ["C002"]


# ------------------------------------------------- C003: blocking under lock


def test_c003_blocking_calls_under_a_lock(tmp_path):
    diags = _check(tmp_path, "src/repro/runtime/m.py", """\
        import time

        from repro.concurrency.locks import ordered_lock

        PLAN = ordered_lock("runtime.engine.plan")

        def bad(fut, q, worker):
            with PLAN:
                fut.result()
                q.get()
                worker.join()
                time.sleep(0.1)
        """)
    assert [d.rule for d in diags] == ["C003"] * 4


def test_c003_engine_run_and_queue_put_under_a_lock(tmp_path):
    diags = _check(tmp_path, "src/repro/serving/m.py", """\
        from repro.concurrency.locks import ordered_lock

        L = ordered_lock("serving.server")

        def bad(engine, work_queue, item):
            with L:
                engine.run(item)
                work_queue.put(item)
        """)
    assert [d.rule for d in diags] == ["C003", "C003"]


def test_c003_timeouts_and_unlocked_calls_are_clean(tmp_path):
    assert not _check(tmp_path, "src/repro/runtime/m.py", """\
        from repro.concurrency.locks import ordered_lock

        PLAN = ordered_lock("runtime.engine.plan")

        def fine(fut, q, worker, item):
            with PLAN:
                snapshot = list(q.queue)
            fut.result(timeout=1.0)
            q.get(timeout=0.5)
            q.put(item, timeout=0.5)
            worker.join()
            return snapshot
        """)


def test_c003_condition_wait_is_exempt(tmp_path):
    # Condition.wait releases the lock while blocked — it is the correct
    # way to block, not a violation.
    assert not _check(tmp_path, "src/repro/serving/m.py", """\
        import threading

        from repro.concurrency.locks import ordered_lock

        class S:
            def __init__(self):
                self._lock = ordered_lock("serving.server")
                self._cond = threading.Condition(self._lock)

            def park(self):
                with self._cond:
                    self._cond.wait()
        """)


def test_c003_nested_defs_do_not_inherit_the_lock(tmp_path):
    # A function *defined* under a lock does not *run* under it.
    assert not _check(tmp_path, "src/repro/runtime/m.py", """\
        from repro.concurrency.locks import ordered_lock

        PLAN = ordered_lock("runtime.engine.plan")

        def outer(fut):
            with PLAN:
                def callback():
                    return fut.result()
            return callback
        """)


# ----------------------------------------------- C004: future resolution


def test_c004_call_between_creation_and_handoff(tmp_path):
    diags = _check(tmp_path, "src/repro/serving/m.py", """\
        from concurrent.futures import Future

        def submit(server, inputs):
            fut = Future()
            request = server.normalize(inputs)
            server.enqueue(request, fut)
            return fut
        """)
    assert _rules(diags) == {"C004"}
    assert "may raise" in diags[0].message


def test_c004_raise_with_unresolved_future(tmp_path):
    diags = _check(tmp_path, "src/repro/serving/m.py", """\
        from concurrent.futures import Future

        def submit(closed):
            fut = Future()
            if closed:
                raise RuntimeError("closed")
            return fut
        """)
    assert "C004" in _rules(diags)


def test_c004_create_after_validation_is_clean(tmp_path):
    assert not _check(tmp_path, "src/repro/serving/m.py", """\
        from concurrent.futures import Future

        def submit(server, inputs):
            request = server.normalize(inputs)
            fut = Future()
            server.enqueue(request, fut)
            return fut
        """)


def test_c004_resolving_try_guard_is_clean(tmp_path):
    assert not _check(tmp_path, "src/repro/serving/m.py", """\
        from concurrent.futures import Future

        def submit(server, inputs):
            fut = Future()
            try:
                request = server.normalize(inputs)
            except Exception as exc:
                fut.set_exception(exc)
                return fut
            server.enqueue(request, fut)
            return fut
        """)


def test_c004_scoped_to_serving(tmp_path):
    source = """\
        from concurrent.futures import Future

        def submit(server, inputs):
            fut = Future()
            request = server.normalize(inputs)
            server.enqueue(request, fut)
            return fut
        """
    assert not _check(tmp_path, "src/repro/runtime/m.py", source)
    assert "C004" in _rules(_check(tmp_path, "src/repro/serving/m.py", source))


# ------------------------------------------------- C005: unlocked publish


_PUBLISH_BAD = """\
    from repro.concurrency.locks import ordered_lock

    class Server:
        def __init__(self):
            self._lock = ordered_lock("serving.server")
            self._closed = False

        def close(self):
            self._closed = True
"""


def test_c005_publish_outside_the_lock(tmp_path):
    diags = _check(tmp_path, "src/repro/serving/m.py", _PUBLISH_BAD)
    assert _rules(diags) == {"C005"}
    assert "_closed" in diags[0].message


def test_c005_publish_under_the_lock_is_clean(tmp_path):
    assert not _check(tmp_path, "src/repro/serving/m.py", """\
        from repro.concurrency.locks import ordered_lock

        class Server:
            def __init__(self):
                self._lock = ordered_lock("serving.server")
                self._closed = False

            def close(self):
                with self._lock:
                    self._closed = True
        """)


def test_c005_condition_wrapping_the_lock_counts(tmp_path):
    assert not _check(tmp_path, "src/repro/serving/m.py", """\
        import threading

        from repro.concurrency.locks import ordered_lock

        class Server:
            def __init__(self):
                self._lock = ordered_lock("serving.server")
                self._cond = threading.Condition(self._lock)
                self._closed = False

            def close(self):
                with self._cond:
                    self._closed = True
        """)


def test_c005_only_applies_to_lock_declaring_classes(tmp_path):
    assert not _check(tmp_path, "src/repro/serving/m.py", """\
        class Config:
            def __init__(self):
                self.max_batch = 8

            def widen(self):
                self.max_batch = 16
        """)


def test_c005_suppression_for_caller_holds_lock(tmp_path):
    src = _PUBLISH_BAD.replace(
        "self._closed = True",
        "self._closed = True  # repro: allow[C005] caller holds self._lock",
    )
    assert not _check(tmp_path, "src/repro/serving/m.py", src)


# ------------------------------------------------------------ tree drivers


def test_check_paths_aggregates(tmp_path):
    _write(tmp_path, "src/repro/runtime/a.py",
           "import threading\n\nL = threading.Lock()\n")
    _write(tmp_path, "src/repro/serving/b.py", textwrap.dedent("""\
        from concurrent.futures import Future

        def f(server, x):
            fut = Future()
            server.check(x)
            server.enqueue(fut)
        """))
    diags = check_paths([tmp_path / "src"], root=tmp_path)
    assert _rules(diags) == {"C001", "C004"}
    for d in diags:
        assert not pathlib.Path(d.location.rsplit(":", 1)[0]).is_absolute()


def test_repo_src_tree_checks_clean():
    """The gate `analyze --concurrency` enforces: src/ has zero errors."""
    diags = check_repo(REPO)
    assert not errors_of(diags), "\n".join(d.format() for d in diags)


def test_check_repo_skips_tests_and_benchmarks():
    # Raw locks and rank overrides in tests/ are fixtures, not products.
    locations = [d.location for d in check_repo(REPO)]
    assert not [loc for loc in locations if not loc.startswith("src")]


# -------------------------------------------------------- CLI entry point


def _run_cli(*argv, cwd=REPO):
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, cwd=cwd, env=env,
    )


def test_cli_analyze_concurrency_exits_zero_on_repo():
    proc = _run_cli("analyze", "--concurrency")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s)" in proc.stdout
    assert "lock discipline" in proc.stdout
