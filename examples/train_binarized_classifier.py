"""Train a binarized classifier with the paper's recipe, then deploy it.

Demonstrates the training substrate end to end on a synthetic image task
(ImageNet is unavailable offline — see DESIGN.md): latent weights with the
straight-through estimator, Adam for binary weights + SGD-momentum for
full-precision variables, linear warmup + cosine decay, QuickNet's
conv -> ReLU -> BN layer order, and finally export through the converter
with a parity check between the eager model and the deployed graph.

Run with::

    python examples/train_binarized_classifier.py
"""

from __future__ import annotations

import numpy as np

from repro.converter import convert
from repro.core.types import Padding
from repro.graph.builder import GraphBuilder
from repro.graph.executor import Executor
from repro.kernels.batchnorm import BatchNormParams
from repro.training import (
    BatchNormLayer,
    DenseLayer,
    GlobalAvgPoolLayer,
    QuantConv2D,
    ReluLayer,
    Sequential,
    TrainConfig,
    Trainer,
    ste_sign,
    synthetic_images,
)

IMAGE_SIZE = 10
CHANNELS = 4
CLASSES = 5
HIDDEN = 16


def build_model(rng: np.random.Generator) -> Sequential:
    """A two-layer BNN in QuickNet's conv -> ReLU -> BN order."""
    return Sequential([
        QuantConv2D(CHANNELS, HIDDEN, kernel=3, binarize_input=False, rng=rng),
        ReluLayer(), BatchNormLayer(HIDDEN),
        QuantConv2D(HIDDEN, HIDDEN, kernel=3, rng=rng),
        ReluLayer(), BatchNormLayer(HIDDEN),
        GlobalAvgPoolLayer(),
        DenseLayer(HIDDEN, CLASSES, rng=rng),
    ])


def export_to_graph(model: Sequential):
    """Freeze the trained layers into a deployable training-graph."""
    conv1, _, bn1, conv2, _, bn2, _, head = model.layers

    def bn_params(bn: BatchNormLayer) -> BatchNormParams:
        return BatchNormParams(
            gamma=bn.gamma.value.copy(), beta=bn.beta.value.copy(),
            mean=bn.running_mean.copy(), variance=bn.running_var.copy(),
            epsilon=bn.eps,
        )

    b = GraphBuilder((1, IMAGE_SIZE, IMAGE_SIZE, CHANNELS))
    h = b.conv2d(b.input, ste_sign(conv1.w.value), padding=Padding.SAME_ONE,
                 binary_weights=True)
    h = b.relu(h)
    h = b.batch_norm(h, bn_params(bn1))
    h = b.binarize(h)
    h = b.conv2d(h, ste_sign(conv2.w.value), padding=Padding.SAME_ONE,
                 binary_weights=True)
    h = b.relu(h)
    h = b.batch_norm(h, bn_params(bn2))
    h = b.global_avgpool(h)
    out = b.dense(h, head.w.value, head.b.value)
    return b.finish(out)


def main() -> None:
    rng = np.random.default_rng(7)
    x, y = synthetic_images(512, IMAGE_SIZE, CHANNELS, CLASSES, noise=0.7, seed=1)
    split = 384
    x_train, y_train, x_test, y_test = x[:split], y[:split], x[split:], y[split:]

    model = build_model(rng)
    cfg = TrainConfig(epochs=12, batch_size=32, binary_lr=0.01, fp_lr=0.1)
    steps = cfg.epochs * (len(x_train) // cfg.batch_size)
    trainer = Trainer(model, cfg, steps)
    history = trainer.fit(x_train, y_train)

    print("epoch  loss    train acc")
    for i, (loss, acc) in enumerate(zip(history.loss, history.accuracy)):
        print(f"{i + 1:>5}  {loss:.4f}  {acc:.3f}")
    test_acc = trainer.evaluate(x_test, y_test)
    print(f"\nheld-out accuracy: {test_acc:.3f} (chance = {1 / CLASSES:.3f})")
    assert test_acc > 2.0 / CLASSES, "training failed to beat chance comfortably"

    # Deploy: export -> convert -> compare predictions.
    graph = export_to_graph(model)
    deployed = convert(graph)
    eager = model.forward(x_test[:8], training=False).argmax(axis=1)
    batch_preds = []
    executor = Executor(deployed.graph)
    for i in range(8):
        batch_preds.append(int(executor.run(x_test[i : i + 1]).argmax()))
    agreement = float(np.mean(eager == np.array(batch_preds)))
    print(f"eager vs deployed prediction agreement: {agreement:.2f}")
    assert agreement == 1.0
    print("deployed model matches the trained model exactly")


if __name__ == "__main__":
    main()
