"""Quickstart: build a BNN, convert it, run it, estimate device latency.

The end-to-end workflow of the paper's Figure 1 in a dozen lines:
a Larq-style training graph goes through the converter into an LCE
inference model with true binarized operators and bitpacked weights,
executes on the NumPy runtime, and gets a latency estimate on the
calibrated Pixel 1 model.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import convert
from repro.graph import Executor, load_model, save_model
from repro.hw import DeviceModel
from repro.hw.latency import graph_latency
from repro.zoo import quicknet


def main() -> None:
    # 1. Build the training graph (QuickNet Small, paper Table 3 row 1).
    training_graph = quicknet("small")
    print(f"training graph: {len(training_graph)} nodes, "
          f"{training_graph.param_nbytes() / 1e6:.1f} MB of float parameters")

    # 2. Convert: fuse batch norms and activations, replace emulated binary
    #    convolutions with LceBConv2d, bitpack weights.
    model = convert(training_graph)
    r = model.report
    print(f"converted:      {r.nodes_before} -> {r.nodes_after} nodes, "
          f"parameters {r.param_bytes_before / 1e6:.1f} -> "
          f"{r.param_bytes_after / 1e6:.1f} MB "
          f"({r.weight_compression:.1f}x smaller)")

    # 3. Run inference on the NumPy runtime.
    rng = np.random.default_rng(0)
    image = rng.standard_normal((1, 224, 224, 3)).astype(np.float32)
    probs = Executor(model.graph).run(image)
    top5 = np.argsort(probs[0])[-5:][::-1]
    print(f"inference OK:   output shape {probs.shape}, top-5 classes {top5.tolist()}")

    # 4. Estimate on-device latency on both calibrated device models.
    for device in (DeviceModel.pixel1(), DeviceModel.rpi4b()):
        ms = graph_latency(device, model.graph).total_ms
        print(f"estimated latency on {device.name}: {ms:.1f} ms")

    # 5. Save the deployable model file and load it back.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "quicknet_small.lce"
        size = save_model(model.graph, path)
        reloaded = load_model(path)
        again = Executor(reloaded).run(image)
        assert np.array_equal(probs, again)
        print(f"model file:     {size / 1e6:.2f} MB, reload round-trip exact")


if __name__ == "__main__":
    main()
