"""Compare binary vs int8 vs float32 convolution latency on-device.

The workload of paper Figures 2/3: sweep convolution shapes, measure each
precision on the calibrated device models, and print speedups plus the
Table 2 summary statistics.  This is the experiment a practitioner runs to
decide whether binarizing their network's convolutions is worth it on
their target device.

Run with::

    python examples/compare_precisions.py [pixel1|rpi4b]
"""

from __future__ import annotations

import sys

from repro.analysis.speedup import speedup_stats
from repro.core.types import Padding
from repro.hw import DeviceModel
from repro.hw.latency import conv_cost


def main(device_name: str = "pixel1") -> None:
    device = DeviceModel.by_name(device_name)
    print(f"device: {device.name} @ {device.freq_hz / 1e9:.2f} GHz\n")

    header = f"{'conv (hw x ch, k)':>22} {'float ms':>10} {'int8 ms':>9} {'binary ms':>10} {'vs float':>9} {'vs int8':>8}"
    print(header)
    print("-" * len(header))

    float_lat, binary_lat = [], []
    for channels in (32, 64, 128, 256):
        for hw in (14, 28, 56):
            for k in (3, 5):
                f = conv_cost(device, "float32", 1, hw, hw, channels, channels,
                              k, k, padding=Padding.SAME_ZERO).total_ms
                i8 = conv_cost(device, "int8", 1, hw, hw, channels, channels,
                               k, k, padding=Padding.SAME_ZERO).total_ms
                b = conv_cost(device, "binary", 1, hw, hw, channels, channels,
                              k, k, padding=Padding.SAME_ONE).total_ms
                float_lat.append(f)
                binary_lat.append(b)
                print(f"{hw:>4}x{hw:<4}x{channels:<4} k={k}    "
                      f"{f:>10.3f} {i8:>9.3f} {b:>10.3f} {f / b:>8.1f}x {i8 / b:>7.1f}x")

    stats = speedup_stats(float_lat, binary_lat)
    print(f"\nbinary vs float over this sweep: mean {stats.mean:.1f}x, "
          f"weighted mean {stats.weighted_mean:.1f}x, "
          f"range {stats.minimum:.1f}-{stats.maximum:.1f}x")
    print("(paper Table 2, Pixel 1: mean 15.0x, weighted 15.1x, range 8.5-18.5x)")


if __name__ == "__main__":
    main(*sys.argv[1:2])
