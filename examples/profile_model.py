"""Profile a zoo model at the operator level (Figure 5 / Table 4 style).

Shows the profiling workflow the paper uses to find latency bottlenecks:
per-layer stacks split binary vs full precision, per-op-class shares, and
the Table 4 subdivision of LceBConv2d into accumulation loop and output
transformation.

Run with::

    python examples/profile_model.py [model] [device]

e.g. ``python examples/profile_model.py binarydensenet28 rpi4b``.
"""

from __future__ import annotations

import sys

from repro.converter import convert
from repro.hw import DeviceModel
from repro.profiling import layer_stacks, profile_graph, quicknet_table4_rows
from repro.zoo import MODEL_REGISTRY, build_model


def main(model_name: str = "quicknet", device_name: str = "rpi4b") -> None:
    if model_name not in MODEL_REGISTRY:
        raise SystemExit(f"unknown model {model_name!r}; pick from {sorted(MODEL_REGISTRY)}")
    device = DeviceModel.by_name(device_name)

    print(f"building and converting {model_name}...")
    model = convert(build_model(model_name), in_place=True)
    profiles = profile_graph(device, model.graph)
    total_ms = sum(p.simulated_s for p in profiles) * 1e3
    print(f"{model_name} on {device_name}: {total_ms:.1f} ms end to end\n")

    print("Operator-class breakdown (Table 4 style):")
    for row in quicknet_table4_rows(profiles):
        bar = "#" * int(row.share_percent / 2)
        print(f"  {row.op_class:38s} {row.share_percent:6.2f}%  {bar}")

    print("\nPer-layer stack (Figure 5 style; binary '=' vs full precision '#'):")
    stacks = layer_stacks(profiles)
    scale = 60 / max(s["binary_s"] + s["full_precision_s"] for s in stacks)
    for s in stacks:
        binary = "=" * int(s["binary_s"] * scale)
        fp = "#" * int(s["full_precision_s"] * scale)
        ms = (s["binary_s"] + s["full_precision_s"]) * 1e3
        print(f"  layer {s['layer']:>3} {ms:7.3f} ms |{binary}{fp}")

    first = stacks[0]
    share = 100 * (first["binary_s"] + first["full_precision_s"]) / (total_ms / 1e3)
    print(f"\nfirst layer share: {share:.1f}% "
          "(the bottleneck QuickNet's stem was designed to remove)")


if __name__ == "__main__":
    main(*sys.argv[1:3])
