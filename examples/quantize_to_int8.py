"""Post-training int8 quantization of a float model (the TFLite-int8 analog).

The paper benchmarks binarized convolutions against 8-bit quantized
baselines.  This example produces such a baseline with this repo's PTQ
pipeline: calibrate a float ResNet-18 on sample data, rewrite it to int8
kernels, check the numerical fidelity, and compare size and device latency
against the float original and the binarized ResNet-18.

Run with::

    python examples/quantize_to_int8.py
"""

from __future__ import annotations

import numpy as np

from repro.converter import convert
from repro.graph.executor import Executor
from repro.hw import DeviceModel
from repro.hw.latency import graph_latency
from repro.ptq import quantize_model
from repro.zoo import binary_resnet18, resnet18_float

INPUT_SIZE = 96  # keep the NumPy inference runs quick


def main() -> None:
    rng = np.random.default_rng(0)
    device = DeviceModel.pixel1()

    print("building float ResNet-18...")
    float_graph = resnet18_float(input_size=INPUT_SIZE)

    print("calibrating on 4 sample batches and quantizing to int8...")
    calibration = [
        rng.standard_normal((1, INPUT_SIZE, INPUT_SIZE, 3)).astype(np.float32)
        for _ in range(4)
    ]
    int8_graph = quantize_model(float_graph, calibration)
    n_int8 = len(int8_graph.ops_by_type("conv2d_int8"))
    print(f"  {n_int8} convolutions now run in int8")

    # Fidelity on in-distribution data.
    sample = calibration[0]
    float_out = Executor(float_graph).run(sample)
    int8_out = Executor(int8_graph).run(sample)
    top1_match = int(float_out.argmax() == int8_out.argmax())
    rel_err = float(np.abs(int8_out - float_out).max() / np.abs(float_out).max())
    print(f"  max relative error {rel_err:.3f}; top-1 prediction match: {bool(top1_match)}")

    print("\nbinarizing the same architecture for comparison...")
    binary = convert(binary_resnet18("A", input_size=INPUT_SIZE), in_place=True)

    print(f"\n{'model':<22} {'latency (pixel1)':>17} {'params':>10}")
    for name, graph in (
        ("float32", float_graph),
        ("int8 (PTQ)", int8_graph),
        ("binary (LCE)", binary.graph),
    ):
        ms = graph_latency(device, graph).total_ms
        print(f"{name:<22} {ms:>14.1f} ms {graph.param_nbytes() / 1e6:>8.1f}MB")
    print(
        "\nThe familiar ordering of the paper's Figure 2, now end to end: "
        "int8 helps, binarization transforms."
    )


if __name__ == "__main__":
    main()
