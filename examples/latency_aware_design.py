"""Measurement-driven architecture design, the paper's Section 5 thesis.

The paper argues that *measured* latency — not MAC counts — should drive
BNN architecture design, and builds QuickNet that way.  This example
replays that workflow: enumerate QuickNet-style candidate architectures,
estimate each one's latency on the device model, check how badly an
eMAC-based ranking would have misled us, and pick the best architecture
under a latency budget.

Run with::

    python examples/latency_aware_design.py [budget_ms]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.analysis.macs import count_macs
from repro.converter import convert
from repro.hw import DeviceModel
from repro.hw.latency import graph_latency
from repro.zoo.quicknet import quicknet
from repro.zoo.resnet_variants import binary_resnet18


@dataclass
class Candidate:
    name: str
    latency_ms: float
    emacs_m: float
    binary_fraction: float


def evaluate(name: str, graph, device) -> Candidate:
    model = convert(graph, in_place=True)
    macs = count_macs(model.graph)
    return Candidate(
        name=name,
        latency_ms=graph_latency(device, model.graph).total_ms,
        emacs_m=(macs.full_precision + macs.binary / 15.0) / 1e6,
        binary_fraction=macs.binary / macs.total,
    )


def main(budget_ms: float = 30.0) -> None:
    device = DeviceModel.pixel1()
    print(f"latency budget: {budget_ms:.0f} ms on {device.name}\n")

    candidates = []
    for variant in ("small", "medium", "large"):
        print(f"evaluating quicknet_{variant}...")
        candidates.append(
            evaluate(f"quicknet_{variant}", quicknet(variant), device)
        )
    for variant in ("A", "C"):
        print(f"evaluating binary_resnet18_{variant}...")
        candidates.append(
            evaluate(f"binary_resnet18_{variant}", binary_resnet18(variant), device)
        )

    print(f"\n{'architecture':>22} {'latency ms':>11} {'eMACs (M)':>10} {'binary %':>9}")
    for c in sorted(candidates, key=lambda c: c.latency_ms):
        print(f"{c.name:>22} {c.latency_ms:>11.1f} {c.emacs_m:>10.0f} "
              f"{100 * c.binary_fraction:>8.0f}%")

    # Would an eMAC ranking and a latency ranking agree?
    by_latency = [c.name for c in sorted(candidates, key=lambda c: c.latency_ms)]
    by_emacs = [c.name for c in sorted(candidates, key=lambda c: c.emacs_m)]
    print(f"\nranking by measured latency: {by_latency}")
    print(f"ranking by eMACs:            {by_emacs}")
    if by_latency != by_emacs:
        print("-> the proxy metric mis-ranks candidates; measure, don't count "
              "(paper Section 5.3)")

    feasible = [c for c in candidates if c.latency_ms <= budget_ms]
    if feasible:
        best = max(feasible, key=lambda c: c.binary_fraction)
        print(f"\npick under budget: {best.name} "
              f"({best.latency_ms:.1f} ms, {100 * best.binary_fraction:.0f}% binary)")
    else:
        print(f"\nno candidate fits {budget_ms:.0f} ms; cheapest is "
              f"{by_latency[0]} at {min(c.latency_ms for c in candidates):.1f} ms")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 30.0)
